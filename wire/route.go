package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"

	"cognicryptgen/templates"
)

// CacheKey derives the daemon's result-cache key — which is also the
// cluster routing key. It folds in the rule-set fingerprint (so a reload
// with different rules invalidates everything), a hash of the template
// source, and every option that influences the output. The daemon's LRU,
// its singleflight group, the peer forwarder, and the client SDK's
// rendezvous router all key on exactly this string, which is what keeps
// each node's cache and coalescer hot: every identical request lands on
// the same node.
func CacheKey(fingerprint, name, source, pkg string, verify bool) string {
	srcSum := sha256.Sum256([]byte(source))
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00%t", fingerprint, name, hex.EncodeToString(srcSum[:]), pkg, verify)
	return hex.EncodeToString(h.Sum(nil))
}

// RouteKey computes the routing key for a GenerateRequest as the daemon
// will see it: a UseCase reference is resolved to its embedded template
// file and source first, so a client routing {"usecase": 3} and a daemon
// hashing the resolved template agree on the owner. fingerprint may be ""
// when the client has not yet observed the cluster's rule-set fingerprint;
// the key is then still deterministic, merely in a different (equally
// consistent) shard layout, and the owning daemon's one-hop forward
// corrects any disagreement.
func RouteKey(fingerprint string, req GenerateRequest) string {
	name, src := req.Name, req.Source
	if req.UseCase != 0 {
		if uc, err := templates.ByID(req.UseCase); err == nil {
			if s, serr := templates.Source(uc); serr == nil {
				name, src = uc.File, s
			}
		}
	}
	if name == "" {
		name = "template.go"
	}
	return CacheKey(fingerprint, name, src, req.Package, req.Verify)
}

// rendezvousScore is the highest-random-weight score of (node, key).
// FNV-1a is plenty: the keys are already SHA-256 hex strings, so the
// score's input entropy is high, and the hash only has to spread it.
func rendezvousScore(node, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// RendezvousOwner returns the node owning key under rendezvous
// (highest-random-weight) hashing: the node whose score for the key is
// highest. Rendezvous hashing gives the two properties the cluster needs
// with no ring state: keys spread near-uniformly across nodes, and
// removing a node moves only the keys it owned (every other key keeps its
// owner — minimal reshuffle). Returns "" for an empty node list. Ties
// break toward the lexically smaller node so every caller agrees.
func RendezvousOwner(key string, nodes []string) string {
	var owner string
	var best uint64
	for _, n := range nodes {
		s := rendezvousScore(n, key)
		if owner == "" || s > best || (s == best && n < owner) {
			owner, best = n, s
		}
	}
	return owner
}

// RendezvousRank returns nodes ordered by descending rendezvous score for
// key: the owner first, then the node that would own the key if the owner
// vanished, and so on. Clients walk this order on failover so a dead
// owner's keys migrate consistently to the same runner-up everywhere.
func RendezvousRank(key string, nodes []string) []string {
	ranked := append([]string(nil), nodes...)
	sort.Slice(ranked, func(i, j int) bool {
		si, sj := rendezvousScore(ranked[i], key), rendezvousScore(ranked[j], key)
		if si != sj {
			return si > sj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}
