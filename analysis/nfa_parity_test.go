package analysis

import (
	"sync"
	"testing"

	"cognicryptgen/rules"
)

var (
	nfaOnce sync.Once
	nfaAna  *Analyzer
	nfaErr  error
)

func nfaAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	nfaOnce.Do(func() { nfaAna, nfaErr = New(rules.MustLoad(), "", Options{NFASimulation: true}) })
	if nfaErr != nil {
		t.Fatal(nfaErr)
	}
	return nfaAna
}

// TestNFAModeParityOnMisuses cross-validates DFA and NFA simulation modes
// over a battery of misuse and clean programs: finding multisets must
// match exactly (kind + line).
func TestNFAModeParityOnMisuses(t *testing.T) {
	programs := []string{
		figure1,
		`package main

import "cognicryptgen/gca"

func weak() ([]byte, error) {
	kg, err := gca.NewKeyGenerator("AES")
	if err != nil {
		return nil, err
	}
	key, err := kg.GenerateKey()
	if err != nil {
		return nil, err
	}
	return key.Encoded(), nil
}
`,
		`package main

import "cognicryptgen/gca"

func incomplete(key *gca.SecretKey) error {
	c, err := gca.NewCipher("AES/GCM/NoPadding")
	if err != nil {
		return err
	}
	return c.Init(gca.EncryptMode, key)
}
`,
		`package main

import "cognicryptgen/gca"

func clean(data []byte) ([]byte, error) {
	md, err := gca.NewMessageDigest("SHA-256")
	if err != nil {
		return nil, err
	}
	if err := md.Update(data); err != nil {
		return nil, err
	}
	return md.Digest()
}
`,
	}
	dfa := sharedAnalyzer(t)
	nfa := nfaAnalyzer(t)
	for i, src := range programs {
		rd, err := dfa.AnalyzeSource("p.go", src)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := nfa.AnalyzeSource("p.go", src)
		if err != nil {
			t.Fatal(err)
		}
		if len(rd.Findings) != len(rn.Findings) {
			t.Errorf("program %d: DFA %d findings, NFA %d", i, len(rd.Findings), len(rn.Findings))
			continue
		}
		for j := range rd.Findings {
			a, b := rd.Findings[j], rn.Findings[j]
			if a.Kind != b.Kind || a.Pos.Line != b.Pos.Line {
				t.Errorf("program %d finding %d: %v vs %v", i, j, a, b)
			}
		}
	}
}
