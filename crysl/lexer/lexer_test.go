package lexer

import (
	"testing"

	"cognicryptgen/crysl/token"
)

func kindsOf(src string) []token.Kind {
	l := New(src)
	var out []token.Kind
	for _, t := range l.All() {
		out = append(out, t.Kind)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kindsOf("SPEC gca.Cipher")
	want := []token.Kind{token.SPEC, token.IDENT, token.DOT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Kind{
		":=": token.ASSIGN, "==": token.EQ, "!=": token.NEQ,
		"<=": token.LEQ, ">=": token.GEQ, "<": token.LT, ">": token.GT,
		"=>": token.IMPLIES, "&&": token.AND, "||": token.OROR,
		"|": token.OR, "?": token.OPT, "*": token.STAR, "+": token.PLUS,
		"[]": token.SLICE, "[": token.LBRACKET, "]": token.RBRACKET,
		"(": token.LPAREN, ")": token.RPAREN, "{": token.LBRACE, "}": token.RBRACE,
		",": token.COMMA, ";": token.SEMICOLON, ":": token.COLON, ".": token.DOT,
		"!": token.NOT, "-": token.MINUS,
	}
	for src, want := range cases {
		l := New(src)
		tok := l.Next()
		if tok.Kind != want {
			t.Errorf("%q: got %v, want %v", src, tok.Kind, want)
		}
		if len(l.Errors()) != 0 {
			t.Errorf("%q: unexpected errors %v", src, l.Errors())
		}
	}
}

func TestKeywords(t *testing.T) {
	for _, kw := range []string{"SPEC", "OBJECTS", "FORBIDDEN", "EVENTS", "ORDER",
		"CONSTRAINTS", "REQUIRES", "ENSURES", "NEGATES", "in", "after", "this",
		"instanceof", "part", "length", "callTo", "noCallTo"} {
		l := New(kw)
		tok := l.Next()
		if tok.Kind == token.IDENT {
			t.Errorf("%q lexed as plain identifier", kw)
		}
	}
	// Case matters: "spec" is an identifier.
	if tok := New("spec").Next(); tok.Kind != token.IDENT {
		t.Errorf("lowercase 'spec' should be IDENT, got %v", tok.Kind)
	}
}

func TestBoolLiterals(t *testing.T) {
	for _, src := range []string{"true", "false"} {
		tok := New(src).Next()
		if tok.Kind != token.BOOL || tok.Lit != src {
			t.Errorf("%q: got %v %q", src, tok.Kind, tok.Lit)
		}
	}
}

func TestStringLiteral(t *testing.T) {
	tok := New(`"AES/GCM/NoPadding"`).Next()
	if tok.Kind != token.STRING || tok.Lit != "AES/GCM/NoPadding" {
		t.Fatalf("got %v %q", tok.Kind, tok.Lit)
	}
}

func TestStringEscapes(t *testing.T) {
	tok := New(`"a\nb\t\"c\\"`).Next()
	if tok.Lit != "a\nb\t\"c\\" {
		t.Fatalf("escape handling wrong: %q", tok.Lit)
	}
}

func TestUnterminatedString(t *testing.T) {
	l := New(`"abc`)
	tok := l.Next()
	if tok.Kind != token.ILLEGAL {
		t.Errorf("unterminated string should be ILLEGAL, got %v", tok.Kind)
	}
	if len(l.Errors()) == 0 {
		t.Error("expected a lexical error")
	}
}

func TestCharLiteral(t *testing.T) {
	tok := New(`'x'`).Next()
	if tok.Kind != token.CHAR || tok.Lit != "x" {
		t.Fatalf("got %v %q", tok.Kind, tok.Lit)
	}
	tok = New(`'\n'`).Next()
	if tok.Kind != token.CHAR || tok.Lit != "\n" {
		t.Fatalf("escaped char: got %v %q", tok.Kind, tok.Lit)
	}
}

func TestComments(t *testing.T) {
	src := `// line comment
SPEC /* block
comment */ x`
	got := kindsOf(src)
	want := []token.Kind{token.SPEC, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("comments not skipped: %v", got)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	l := New("/* never closed")
	l.Next()
	if len(l.Errors()) == 0 {
		t.Error("expected unterminated-comment error")
	}
}

func TestPositions(t *testing.T) {
	l := New("SPEC\n  foo")
	spec := l.Next()
	foo := l.Next()
	if spec.Pos.Line != 1 || spec.Pos.Col != 1 {
		t.Errorf("SPEC at %v, want 1:1", spec.Pos)
	}
	if foo.Pos.Line != 2 || foo.Pos.Col != 3 {
		t.Errorf("foo at %v, want 2:3", foo.Pos)
	}
}

func TestPeekIsIdempotent(t *testing.T) {
	l := New("a b")
	if l.Peek().Lit != "a" || l.Peek().Lit != "a" {
		t.Fatal("Peek consumed input")
	}
	if l.Next().Lit != "a" || l.Next().Lit != "b" {
		t.Fatal("Next order wrong after Peek")
	}
}

func TestIllegalRune(t *testing.T) {
	l := New("@")
	tok := l.Next()
	if tok.Kind != token.ILLEGAL {
		t.Fatalf("got %v", tok.Kind)
	}
	if len(l.Errors()) == 0 {
		t.Error("expected error for '@'")
	}
}

func TestUnderscore(t *testing.T) {
	if tok := New("_").Next(); tok.Kind != token.UNDERSCORE {
		t.Errorf("got %v", tok.Kind)
	}
	if tok := New("_x").Next(); tok.Kind != token.IDENT || tok.Lit != "_x" {
		t.Errorf("identifier starting with underscore: got %v %q", tok.Kind, tok.Lit)
	}
}

func TestIntLiteral(t *testing.T) {
	tok := New("10000").Next()
	if tok.Kind != token.INT || tok.Lit != "10000" {
		t.Fatalf("got %v %q", tok.Kind, tok.Lit)
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	tok := New("schlüssel").Next()
	if tok.Kind != token.IDENT || tok.Lit != "schlüssel" {
		t.Fatalf("got %v %q", tok.Kind, tok.Lit)
	}
}
