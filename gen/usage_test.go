package gen

import (
	"strings"
	"testing"
)

// usageOf generates a template and extracts the TemplateUsage function
// text.
func usageOf(t *testing.T, src string) string {
	t.Helper()
	g := sharedGenerator(t)
	res, err := g.GenerateFile("u.go", src)
	if err != nil {
		t.Fatal(err)
	}
	i := strings.Index(res.Output, "func TemplateUsage")
	if i < 0 {
		t.Fatalf("no TemplateUsage in output:\n%s", res.Output)
	}
	return res.Output[i:]
}

func TestUsageThreadsResultsByType(t *testing.T) {
	usage := usageOf(t, `//go:build cryptgen_template

package u

import (
	"cognicryptgen/gca"
	cryslgen "cognicryptgen/gen/fluent"
)

type Flow struct{}

// MakeKey produces a key.
func (f *Flow) MakeKey() (*gca.SecretKey, error) {
	var key *gca.SecretKey
	cryslgen.NewGenerator().
		ConsiderRule("gca.KeyGenerator").AddReturnObject(key).
		Generate()
	return key, nil
}

// UseKey consumes the key.
func (f *Flow) UseKey(data []byte, key *gca.SecretKey) ([]byte, error) {
	iv := make([]byte, 12)
	var ct []byte
	cryslgen.NewGenerator().
		ConsiderRule("gca.SecureRandom").AddParameter(iv, "out").
		ConsiderRule("gca.IVParameterSpec").
		ConsiderRule("gca.Cipher").AddParameter(key, "key").AddParameter(data, "input").
		AddReturnObject(ct).
		Generate()
	return ct, nil
}
`)
	// MakeKey's result must flow into UseKey's key parameter.
	if !strings.Contains(usage, "t.MakeKey()") {
		t.Errorf("MakeKey not called:\n%s", usage)
	}
	if !strings.Contains(usage, "t.UseKey(data, secretKey)") {
		t.Errorf("key result not threaded into UseKey:\n%s", usage)
	}
	// Unmatched data parameter becomes a TemplateUsage parameter.
	if !strings.Contains(usage, "data []byte") {
		t.Errorf("unmatched parameter not pushed up:\n%s", usage)
	}
}

func TestUsageSuppressesUnusedResults(t *testing.T) {
	usage := usageOf(t, miniTemplate)
	if !strings.Contains(usage, "_ = ") {
		t.Errorf("unconsumed result not suppressed:\n%s", usage)
	}
	if !strings.Contains(usage, "return nil") {
		t.Errorf("usage must return nil at the end:\n%s", usage)
	}
}

func TestUsageSkipsHelpers(t *testing.T) {
	src := strings.Replace(miniTemplate, "return digest, nil\n}",
		"return digest, nil\n}\n\nfunc (h *Hasher) helper() int { return 1 }", 1)
	usage := usageOf(t, src)
	if strings.Contains(usage, "helper") {
		t.Errorf("helper method must not appear in usage:\n%s", usage)
	}
}

func TestUsagePropagatesErrors(t *testing.T) {
	usage := usageOf(t, miniTemplate)
	if !strings.Contains(usage, "if err != nil {") || !strings.Contains(usage, "return err") {
		t.Errorf("error propagation missing:\n%s", usage)
	}
}
