// Package srccheck type-checks Go source against this module's packages
// without invoking the go tool.
//
// The CGO 2020 paper guarantees that generated code "is free of syntax
// errors and type-checks". For the Java original, the Eclipse JDT provided
// that check; here go/parser and go/types do. Because generated code
// imports module-local packages (cognicryptgen/gca, cognicryptgen/gen/...)
// that the standard source importer cannot resolve in module mode, this
// package implements a module-aware source importer: module-local import
// paths are parsed and type-checked from the source tree, everything else
// is resolved through go/build and type-checked from GOROOT source.
//
// All type-checked packages live in a process-wide shared Universe keyed
// by module root (see universe.go): the first Checker in a process pays
// the one-time cost of importing the crypto façade's transitive closure,
// every later Checker constructs in microseconds, and concurrent imports
// are both safe and deduplicated.
package srccheck

import (
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// ModulePath is this module's path as declared in go.mod.
const ModulePath = "cognicryptgen"

// ModuleRoot locates the module root by walking up from dir (or the
// working directory when dir is empty) until a go.mod declaring ModulePath
// is found.
func ModuleRoot(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil && strings.Contains(string(data), "module "+ModulePath) {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("srccheck: module root for %q not found", ModulePath)
		}
		dir = parent
	}
}

// Importer resolves import paths for go/types against the process-wide
// shared Universe of its module root. It is safe for concurrent use by any
// number of goroutines: concurrent Import calls for the same path
// deduplicate onto one build (the rest wait on a per-path latch and
// receive the same *types.Package), and calls for different paths build in
// parallel. All Importers of one module root share one cache, so the
// type-checked packages they return are pointer-identical across
// Importers; TestConcurrentImport pins both properties under the race
// detector.
type Importer struct {
	u *Universe
}

// NewImporter returns an importer over the shared universe of the module
// rooted at root. Positions are recorded in the universe's FileSet (see
// Fset); packages already built by any other Importer or Checker of the
// same root are reused, not re-type-checked.
func NewImporter(root string) *Importer {
	return &Importer{u: SharedUniverse(root)}
}

// Fset returns the shared FileSet positions resolve against.
func (imp *Importer) Fset() *token.FileSet { return imp.u.Fset() }

// Import implements types.Importer.
func (imp *Importer) Import(path string) (*types.Package, error) {
	return imp.u.Import(path)
}

// ImportFrom implements types.ImporterFrom; srcDir anchors vendor-aware
// resolution of non-module paths.
func (imp *Importer) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if srcDir == "" {
		srcDir = imp.u.root
	}
	return imp.u.importFrom(path, srcDir, nil)
}

// Checker type-checks in-memory Go sources against the module.
//
// A Checker is safe for concurrent use: its FileSet is the universe's
// shared, internally synchronized FileSet, and imports resolve through the
// concurrency-safe universe. Each Check call builds its own types.Info.
type Checker struct {
	Fset *token.FileSet
	u    *Universe
}

// NewChecker returns a checker rooted at the module containing dir ("" =
// working directory). The first Checker of a module root in a process pays
// for the imports it triggers; every subsequent Checker shares the
// already-built universe and constructs in microseconds.
func NewChecker(dir string) (*Checker, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	u := SharedUniverse(root)
	return &Checker{Fset: u.fset, u: u}, nil
}

// ImportPackage loads and type-checks a package by import path.
func (c *Checker) ImportPackage(path string) (*types.Package, error) {
	return c.u.Import(path)
}

// importer returns a fresh types.Importer view over the universe (fresh
// cycle-detection chain per checked file set).
func (c *Checker) importer() types.ImporterFrom {
	return &chainImporter{u: c.u, srcDir: c.u.root}
}

// CheckDir parses and type-checks all non-test Go files of the package in
// dir, returning the files and the shared type info.
func (c *Checker) CheckDir(dir string) ([]*ast.File, *types.Package, *types.Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("srccheck: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(c.Fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("srccheck: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("srccheck: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: c.importer(),
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(files[0].Name.Name, c.Fset, files, info)
	if len(errs) > 0 {
		return files, pkg, info, fmt.Errorf("srccheck: type errors: %w", errors.Join(errs...))
	}
	if err != nil {
		return files, pkg, info, fmt.Errorf("srccheck: type errors: %w", err)
	}
	return files, pkg, info, nil
}

// CheckPackageWith type-checks the Go package in dir together with one
// additional in-memory file (filename/src), as if the file had been saved
// into the directory. Test files are ignored. An empty or non-existent
// directory degrades to checking the new file alone.
func (c *Checker) CheckPackageWith(dir, filename, src string) error {
	extra, err := parser.ParseFile(c.Fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return fmt.Errorf("srccheck: parse %s: %w", filename, err)
	}
	files := []*ast.File{extra}
	entries, err := os.ReadDir(dir)
	if err == nil {
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(c.Fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("srccheck: parsing existing %s: %w", name, err)
			}
			if f.Name.Name != extra.Name.Name {
				return fmt.Errorf("srccheck: package mismatch: %s declares %q, new file declares %q", name, f.Name.Name, extra.Name.Name)
			}
			files = append(files, f)
		}
	}
	var errs []error
	conf := types.Config{
		Importer: c.importer(),
		Error:    func(err error) { errs = append(errs, err) },
	}
	if _, err := conf.Check(extra.Name.Name, c.Fset, files, nil); err != nil && len(errs) == 0 {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return fmt.Errorf("srccheck: type errors: %w", errors.Join(errs...))
	}
	return nil
}

// PackageNameOf reports the package name declared by the Go files in dir,
// or "" when the directory has none.
func PackageNameOf(dir string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly)
		if err != nil {
			continue
		}
		return f.Name.Name
	}
	return ""
}

// CheckSource parses and type-checks a single in-memory Go file named
// filename containing src. It returns the parsed file, its package, and
// the type info.
func (c *Checker) CheckSource(filename, src string) (*ast.File, *types.Package, *types.Info, error) {
	f, err := parser.ParseFile(c.Fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("srccheck: parse: %w", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: c.importer(),
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(f.Name.Name, c.Fset, []*ast.File{f}, info)
	if len(errs) > 0 {
		return f, pkg, info, fmt.Errorf("srccheck: type errors: %w", errors.Join(errs...))
	}
	if err != nil {
		return f, pkg, info, fmt.Errorf("srccheck: type errors: %w", err)
	}
	return f, pkg, info, nil
}
