package service

import "cognicryptgen/wire"

// The request/response shapes moved to the wire package (the shared
// daemon/SDK/tooling contract); these aliases keep the service package's
// historical names working for embedders and tests. New code should use
// the wire types directly.
type (
	GenerateRequest  = wire.GenerateRequest
	GenerateResponse = wire.GenerateResponse
	ReportJSON       = wire.Report
	MethodReportJSON = wire.MethodReport
	RuleReportJSON   = wire.RuleReport
	AnalyzeRequest   = wire.AnalyzeRequest
	AnalyzeResponse  = wire.AnalyzeResponse
	FindingJSON      = wire.Finding
	BatchRequest     = wire.BatchRequest
	BatchItem        = wire.BatchItem
	BatchResponse    = wire.BatchResponse
)
