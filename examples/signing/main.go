// Signing: generate the "Digital Signing of Strings" use case, write the
// result into a scratch package, and walk through the cross-method
// predicate story — the template passes the key pair between chains via
// AddParameter(kp, "this"), and the generator selects Private() for the
// signing chain and Public() for the verification chain (paper §3.3 path
// selection driven by ENSURES/REQUIRES links).
//
//	go run ./examples/signing
package main

import (
	"fmt"
	"log"

	"cognicryptgen/gen"
	"cognicryptgen/rules"
	"cognicryptgen/templates"
)

func main() {
	log.SetFlags(0)
	generator, err := gen.New(rules.MustLoad(), "", gen.Options{Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	uc, err := templates.ByID(10)
	if err != nil {
		log.Fatal(err)
	}
	src, err := templates.Source(uc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := generator.GenerateFile(uc.File, src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== path selection across the sign / verify chains ===")
	for _, m := range res.Report.Methods {
		for _, r := range m.Rules {
			fmt.Printf("%-16s %-16s -> %v\n", m.Name, r.Rule, r.Path)
		}
	}
	fmt.Println()
	fmt.Println("note how gca.KeyPair resolves to [p2] (Private) under Sign but")
	fmt.Println("[p1] (Public) under Verify: the Signature rule REQUIRES the")
	fmt.Println("generatedPrivKey/generatedPubKey predicate that each path grants.")
	fmt.Println()
	fmt.Println("=== generated implementation ===")
	fmt.Println(res.Output)
}
