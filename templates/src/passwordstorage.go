//go:build cryptgen_template

// Template: secure user-password storage (use case 9 of Table 1). The
// stored form is "salt$hash" in hex; verification re-derives and compares
// in constant time.
package passwordstorage

import (
	"crypto/subtle"
	"encoding/hex"
	"strings"

	"cognicryptgen/gca"
	cryslgen "cognicryptgen/gen/fluent"
)

// PasswordStorage hashes passwords for storage and verifies login
// attempts.
type PasswordStorage struct{}

// Hash derives a storable credential from pwd with a fresh random salt.
func (t *PasswordStorage) Hash(pwd []rune) (string, error) {
	salt := make([]byte, 32)
	var digest []byte
	cryslgen.NewGenerator().
		ConsiderRule("gca.SecureRandom").AddParameter(salt, "out").
		ConsiderRule("gca.PBEKeySpec").AddParameter(pwd, "password").
		ConsiderRule("gca.SecretKeyFactory").
		ConsiderRule("gca.SecretKey").AddReturnObject(digest).
		Generate()
	return hex.EncodeToString(salt) + "$" + hex.EncodeToString(digest), nil
}

// Verify reports whether pwd matches the stored credential.
func (t *PasswordStorage) Verify(pwd []rune, stored string) (bool, error) {
	parts := strings.Split(stored, "$")
	if len(parts) != 2 {
		return false, gca.ErrInvalidParameter
	}
	salt, err := hex.DecodeString(parts[0])
	if err != nil {
		return false, err
	}
	want, err := hex.DecodeString(parts[1])
	if err != nil {
		return false, err
	}
	var digest []byte
	cryslgen.NewGenerator().
		ConsiderRule("gca.PBEKeySpec").AddParameter(pwd, "password").AddParameter(salt, "salt").
		ConsiderRule("gca.SecretKeyFactory").
		ConsiderRule("gca.SecretKey").AddReturnObject(digest).
		Generate()
	return subtle.ConstantTimeCompare(digest, want) == 1, nil
}
