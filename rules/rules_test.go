package rules

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadsAllRules(t *testing.T) {
	s, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 14 {
		t.Fatalf("rule count %d, want 14", s.Len())
	}
	for _, name := range []string{
		"gca.SecureRandom", "gca.PBEKeySpec", "gca.SecretKeyFactory",
		"gca.SecretKey", "gca.SecretKeySpec", "gca.KeyGenerator",
		"gca.KeyPairGenerator", "gca.KeyPair", "gca.IVParameterSpec",
		"gca.Cipher", "gca.Signature", "gca.MessageDigest", "gca.Mac",
		"gca.KeyStore",
	} {
		if _, ok := s.Get(name); !ok {
			t.Errorf("missing rule %s", name)
		}
	}
}

func TestPredicateChainIsClosed(t *testing.T) {
	// Every REQUIRES predicate must have at least one producer in the set
	// (or be the template-trust escape hatch, which none should need).
	s := MustLoad()
	for _, r := range s.Rules() {
		for _, req := range r.AST.Requires {
			if producers := s.Producers(req.Name); len(producers) == 0 {
				t.Errorf("%s requires %q, which no rule ENSURES", r.SpecType(), req.Name)
			}
		}
	}
}

func TestPBEKeySpecRuleShape(t *testing.T) {
	s := MustLoad()
	r, _ := s.Get("gca.PBEKeySpec")
	if len(r.AST.Forbidden) != 1 || r.AST.Forbidden[0].Method != "NewPBEKeySpecNoSalt" {
		t.Errorf("forbidden section: %+v", r.AST.Forbidden)
	}
	if !r.DFA.Accepts([]string{"c1", "cP"}) {
		t.Error("c1,cP must be accepted")
	}
	if r.DFA.Accepts([]string{"c1"}) {
		t.Error("missing ClearPassword must leave a non-accepting state")
	}
	neg := r.NegatingLabels()
	if !neg["cP"] {
		t.Error("cP must negate")
	}
}

func TestCipherRuleCoversAllFlows(t *testing.T) {
	s := MustLoad()
	r, _ := s.Get("gca.Cipher")
	flows := [][]string{
		{"c1", "i1", "f1"},
		{"c1", "i2", "f1"},
		{"c1", "i2", "a1", "u1", "f1"},
		{"c1", "i1", "w1"},
		{"c1", "i1", "uw1"},
		{"c1", "i1", "gi", "f1"},
	}
	for _, f := range flows {
		if !r.DFA.Accepts(f) {
			t.Errorf("flow %v rejected", f)
		}
	}
	bad := [][]string{
		{"f1"},
		{"c1", "f1"},
		{"c1", "i1", "i2", "f1"},
		{"c1", "i1", "f1", "w1"},
	}
	for _, f := range bad {
		if r.DFA.Accepts(f) {
			t.Errorf("flow %v wrongly accepted", f)
		}
	}
}

func TestAlgorithmLiteralsMatchGCAWhitelist(t *testing.T) {
	// Rule/API drift check: every algorithm literal in the rules must be
	// accepted by the gca constructors (covered behaviourally by the gca
	// tests); here we at least pin the preferred literals the generator
	// will pick.
	srcs, err := Sources()
	if err != nil {
		t.Fatal(err)
	}
	pins := map[string]string{
		"SecretKeyFactory.crysl": `{"PBKDF2WithHmacSHA256"`,
		"Cipher.crysl":           `{"AES/GCM/NoPadding"`,
		"MessageDigest.crysl":    `{"SHA-256"`,
		"Signature.crysl":        `{"SHA256withECDSA"`,
		"KeyGenerator.crysl":     `{"AES"}`,
	}
	for file, frag := range pins {
		if !strings.Contains(srcs[file], frag) {
			t.Errorf("%s: preferred literal %q not first", file, frag)
		}
	}
}

func TestLoadFreshIndependentOfCache(t *testing.T) {
	a := MustLoad()
	b, err := LoadFresh()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("LoadFresh returned the cached set")
	}
	if a.Len() != b.Len() {
		t.Error("fresh load differs from cached load")
	}
}

// TestTryLoadEmptyDirIsCachedLoad: with no directory, TryLoad must return
// the very same cached set as Load — services default to the embedded
// rules without paying a second compile.
func TestTryLoadEmptyDirIsCachedLoad(t *testing.T) {
	cached, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	s, err := TryLoad("")
	if err != nil {
		t.Fatal(err)
	}
	if s != cached {
		t.Fatal("TryLoad(\"\") returned a different set than Load()")
	}
}

// TestTryLoadExternalDir exercises the non-panicking external path: a good
// directory loads, a broken rule file comes back as an error (not a
// panic), and a missing directory is an error too.
func TestTryLoadExternalDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "w.crysl"),
		[]byte("SPEC gca.Widget\nEVENTS\n    c: New();\nORDER\n    c\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := TryLoad(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("gca.Widget"); !ok {
		t.Fatal("external rule not loaded")
	}

	if err := os.WriteFile(filepath.Join(dir, "bad.crysl"),
		[]byte("SPEC\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := TryLoad(dir); err == nil {
		t.Fatal("broken external rule did not surface as an error")
	}

	if _, err := TryLoad(filepath.Join(dir, "no-such-subdir")); err == nil {
		t.Fatal("missing rule directory did not surface as an error")
	}
}
