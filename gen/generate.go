// Package gen implements CogniCryptGEN, the CrySL-driven secure code
// generator of the CGO 2020 paper, for Go.
//
// Given a code template (a Go file whose methods contain fluent chains,
// see package cognicryptgen/gen/fluent) and a compiled GoCrySL rule set,
// the generator:
//
//  1. collects the rules and their template bindings from each fluent
//     chain (workflow step ①),
//  2. links rules through ENSURES/REQUIRES predicates (step ②),
//  3. enumerates accepting call paths from each rule's ORDER automaton and
//     selects one per rule — preferring paths that consume predicate links,
//     then the shortest path with the fewest parameters (step ③),
//  4. resolves each call parameter through the paper's cascade: template
//     binding → predicate-carrying generated object → constraint-derived
//     secure value → pushed-up placeholder (step ④), and
//  5. splices the assembled, error-handled Go statements over the fluent
//     chain, appends calls that would NEGATE predicates to the end of the
//     block, and synthesizes a TemplateUsage function (step ⑤).
//
// The output is gofmt-formatted and, when Options.Verify is set,
// type-checked against the module with go/types, realising the paper's
// guarantee that generated code is syntactically valid and type-correct.
package gen

import (
	"context"
	"fmt"
	"go/types"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"cognicryptgen/crysl"
	"cognicryptgen/crysl/ast"
	"cognicryptgen/crysl/constraint"
	"cognicryptgen/internal/faultinject"
	"cognicryptgen/internal/srccheck"
)

// DefaultMaxPaths is the per-rule bound on accepting-path enumeration
// applied when Options.MaxPaths is zero. Long-lived processes that warm a
// shared PathCache (the service registry) must use the same bound, or the
// warmed entries are never hit by default-option Generators.
const DefaultMaxPaths = 512

// Options configures a Generator.
type Options struct {
	// PackageName overrides the output package name ("" keeps the
	// template's).
	PackageName string
	// Verify type-checks the generated file against the module.
	Verify bool
	// MaxPaths bounds accepting-path enumeration per rule (0 = 512).
	MaxPaths int
	// Paths, when non-nil, memoizes per-rule accepting-path enumeration.
	// A single PathCache may be shared by many Generators over the same
	// immutable rule set (see NewPathCache); the service registry does
	// exactly that so paths are enumerated once per process, not once per
	// generation.
	Paths *PathCache
	// Plans, when non-nil, memoizes whole generations as compiled Plans
	// (see PlanCache): the first generation of a (template source, rule
	// set, options) tuple runs the full pipeline and compiles a byte
	// skeleton; every later one — regardless of template name or package
	// override, which are splice points — executes in a handful of byte
	// copies. Like Paths, one PlanCache is meant to be shared by many
	// Generators; it is internally synchronized.
	Plans *PlanCache

	// Ablation switches (all default off = full algorithm). They exist for
	// the E7 ablation benchmarks documented in DESIGN.md.
	NoLinkPreference bool // ignore predicate links when ranking paths
	NoDerivation     bool // disable constraint-derived values (cascade step c)
	NoBindingFilter  bool // do not require paths to cover template bindings
	NFASimulation    bool // (analysis-side knob; kept here for symmetry)
}

// Generator turns code templates into secure implementations.
//
// A Generator is NOT safe for concurrent use: it threads the current
// chain's object pool (curPool) through generation. Concurrent servers run
// one Generator per worker.
//
// The inputs a Generator reads, however, are safe to share: a compiled
// *crysl.RuleSet is immutable after loading (rules, events, aggregates,
// objects, and DFAs are built once and only read afterwards), a *PathCache
// is internally synchronized, and the type-checked package universe behind
// its srccheck.Checker is a process-wide concurrency-safe cache shared by
// every Generator of the same module root. Any number of Generators in any
// number of goroutines may therefore share one rule set and one path
// cache; TestConcurrentGeneration enforces this with the race detector.
type Generator struct {
	rules   *crysl.RuleSet
	checker *srccheck.Checker
	api     *apiModel
	opts    Options

	// curPool is the object pool of the chain currently being generated.
	curPool []*genObject
}

// New creates a Generator over the rule set. The module is located from
// dir ("" = working directory) so that templates and generated code can be
// type-checked against it.
//
// The first Generator in a process pays the one-time cost of source-
// importing the crypto façade's transitive closure (~1 s, fanned across
// CPUs); the type-checked packages land in srccheck's process-wide shared
// universe, so every subsequent New over the same module constructs in
// microseconds. Daemon workers and repeated single-shot constructions
// share that warm-up instead of each paying it.
func New(ruleSet *crysl.RuleSet, dir string, opts Options) (*Generator, error) {
	checker, err := srccheck.NewChecker(dir)
	if err != nil {
		return nil, err
	}
	gcaPkg, err := checker.ImportPackage(srccheck.ModulePath + "/gca")
	if err != nil {
		return nil, fmt.Errorf("gen: loading crypto façade: %w", err)
	}
	if opts.MaxPaths == 0 {
		opts.MaxPaths = DefaultMaxPaths
	}
	return &Generator{
		rules:   ruleSet,
		checker: checker,
		api:     buildAPIModel(gcaPkg),
		opts:    opts,
	}, nil
}

// Rules returns the generator's rule set.
func (g *Generator) Rules() *crysl.RuleSet { return g.rules }

// WithOptions returns a Generator sharing this one's compiled rule set,
// type-checker, and API model, but running under opts. Construction is
// O(1), which lets a long-lived worker keep one base Generator and derive
// per-request variants (package name override, verification on/off) for
// free. The derived Generator follows the same rule as the base: use from
// one goroutine at a time, and not concurrently with the base (the
// generation state itself is per-Generator; the shared type-check universe
// underneath is concurrency-safe).
func (g *Generator) WithOptions(opts Options) *Generator {
	if opts.MaxPaths == 0 {
		opts.MaxPaths = DefaultMaxPaths
	}
	return &Generator{
		rules:   g.rules,
		checker: g.checker,
		api:     g.api,
		opts:    opts,
	}
}

// Result is the outcome of generating one template.
type Result struct {
	// Output is the complete generated Go source file.
	Output string
	// Report records the decisions taken during generation.
	Report *Report
}

// Report collects diagnostics of a generation run (selected paths,
// parameter resolutions, recorded assumptions, pushed-up parameters).
type Report struct {
	Template    string
	Methods     []*MethodReport
	Assumptions []string
	PushedUp    []string
	Duration    time.Duration
}

// MethodReport records per-method generation decisions.
type MethodReport struct {
	Name  string
	Rules []*RuleReport
}

// RuleReport records the decisions for one rule invocation.
type RuleReport struct {
	Rule        string
	Path        []string
	Resolutions []string
}

// PanicError reports a panic recovered inside the generation pipeline. The
// pipeline walks adversarial inputs (arbitrary template source through
// go/parser, go/types, and the splicer), so a latent indexing bug is a
// per-request failure, not a process failure: GenerateFileCtx converts the
// panic into this typed error carrying the template name, the recovered
// value, and the stack captured at the panic site.
type PanicError struct {
	Template string
	Value    any
	Stack    []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("gen: panic generating %s: %v", e.Template, e.Value)
}

// GenerateFile runs the full pipeline on template source text. name is
// used for diagnostics only.
func (g *Generator) GenerateFile(name, src string) (*Result, error) {
	return g.GenerateFileCtx(context.Background(), name, src)
}

// GenerateFileCtx is GenerateFile with cooperative cancellation: ctx is
// checked between workflow steps (after template type-checking, before each
// chain, before usage synthesis, and before output verification), so a
// request cancelled or expired mid-flight stops consuming its worker at the
// next step boundary instead of running the pipeline to completion. The
// returned error wraps ctx.Err() and satisfies errors.Is against
// context.Canceled / context.DeadlineExceeded.
func (g *Generator) GenerateFileCtx(ctx context.Context, name, src string) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &PanicError{Template: name, Value: r, Stack: debug.Stack()}
		}
	}()
	if ferr := faultinject.Fire(faultinject.PointGenerate); ferr != nil {
		return nil, fmt.Errorf("gen: %s: %w", name, ferr)
	}
	start := time.Now()

	// Plan fast path: one earlier generation of this (template source,
	// rule set, options) tuple makes this one a byte splice. Requests the
	// splicer cannot serve exactly (see planExecutable) take the legacy
	// pipeline below, whose result then seeds the cache.
	plannable := g.opts.Plans != nil && planExecutable(name, g.opts.PackageName)
	var key planKey
	var rulesFP string
	if plannable {
		rulesFP = g.opts.Plans.FingerprintFor(g.rules)
		key = newPlanKey(rulesFP, src, g.opts)
		if p, ok := g.opts.Plans.lookup(key); ok {
			return p.Execute(name, g.opts.PackageName), nil
		}
	}

	res, tmplPkg, err := g.generate(ctx, name, src, start)
	if err != nil {
		return nil, err
	}
	if plannable {
		outPkg := g.opts.PackageName
		if outPkg == "" {
			outPkg = tmplPkg
		}
		if p, cerr := compilePlan(res, name, outPkg, tmplPkg, rulesFP); cerr == nil {
			g.opts.Plans.put(key, p)
		}
	}
	return res, nil
}

// generate is the legacy (plan-free) pipeline: workflow steps ① through ⑤
// plus optional output verification. It additionally returns the
// template's own package name so the caller can compile a Plan.
func (g *Generator) generate(ctx context.Context, name, src string, start time.Time) (*Result, string, error) {
	if err := cancelled(ctx, name, "template type-check"); err != nil {
		return nil, "", err
	}
	file, pkg, info, err := g.checker.CheckSource(name, src)
	if err != nil {
		return nil, "", fmt.Errorf("gen: template %s does not type-check: %w", name, err)
	}
	tmpl, err := scanTemplate(name, src, file, g.checker.Fset, pkg, info)
	if err != nil {
		return nil, "", err
	}
	report := &Report{Template: name}

	replacements := map[int][2]int{} // keyed by start offset -> [end, idx into texts]
	var texts []string
	for _, m := range tmpl.Methods {
		mr := &MethodReport{Name: m.Decl.Name.Name}
		report.Methods = append(report.Methods, mr)
		methodNames := newNames(m) // shared across the method's chains
		for _, chain := range m.Chains {
			if err := cancelled(ctx, name, "chain generation"); err != nil {
				return nil, "", err
			}
			code, err := g.generateChain(tmpl, m, chain, methodNames, mr, report)
			if err != nil {
				return nil, "", fmt.Errorf("gen: %s.%s: %w", tmpl.StructName, m.Decl.Name.Name, err)
			}
			startOff := g.checker.Fset.Position(chain.Stmt.Pos()).Offset
			endOff := g.checker.Fset.Position(chain.Stmt.End()).Offset
			replacements[startOff] = [2]int{endOff, len(texts)}
			texts = append(texts, code)
		}
	}

	if err := cancelled(ctx, name, "usage synthesis"); err != nil {
		return nil, "", err
	}
	usage, err := g.synthesizeUsage(tmpl)
	if err != nil {
		return nil, "", err
	}
	out, err := g.spliceOutput(tmpl, replacements, texts, usage)
	if err != nil {
		return nil, "", err
	}
	if g.opts.Verify {
		if err := cancelled(ctx, name, "output verification"); err != nil {
			return nil, "", err
		}
		if _, _, _, err := g.checker.CheckSource("generated_"+name, out); err != nil {
			return nil, "", fmt.Errorf("gen: generated code failed verification (this is a generator bug): %w", err)
		}
	}
	report.Duration = time.Since(start)
	return &Result{Output: out, Report: report}, tmpl.File.Name.Name, nil
}

// cancelled maps an expired context to a diagnosable error naming the
// workflow step that was about to run.
func cancelled(ctx context.Context, name, step string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("gen: %s: cancelled before %s: %w", name, step, err)
	}
	return nil
}

// link is an ENSURES→REQUIRES connection between two invocations of a
// chain (workflow step ②).
type link struct {
	producer, consumer int
	pred               string
	consumerVar        string // rule variable on the consumer side
}

// computeLinks walks invocation pairs i<j and connects predicates a
// producer can grant to predicates a consumer requires, matching on
// predicate name and declared-type compatibility. A REQUIRES only
// participates when the required object appears on at least one path the
// consumer could feasibly select (given its bindings and return object) —
// CrySL requirements are conditional on the object actually being used.
func (g *Generator) computeLinks(tmpl *Template, m *TemplateMethod, chain *Chain) []link {
	var links []link
	for j, cinv := range chain.Invocations {
		crule, ok := g.rules.Get(cinv.RuleName)
		if !ok {
			continue
		}
		feasibleVars := g.feasibleVars(tmpl, m, crule, cinv)
		for _, req := range crule.AST.Requires {
			if len(req.Params) == 0 {
				continue
			}
			if !req.Params[0].This && !req.Params[0].Wildcard && !feasibleVars[req.Params[0].Name] {
				continue
			}
			// Determine the declared type of the required object.
			var declType ast.Type
			target := req.Params[0]
			switch {
			case target.This:
				declType = ast.Type{Name: crule.SpecType()}
			case target.Wildcard:
				continue
			default:
				obj, ok := crule.Objects[target.Name]
				if !ok {
					continue
				}
				declType = obj.Type
			}
			// Nearest earlier producer that ENSURES the predicate on a
			// compatible object.
			for i := j - 1; i >= 0; i-- {
				pinv := chain.Invocations[i]
				prule, ok := g.rules.Get(pinv.RuleName)
				if !ok {
					continue
				}
				if g.canGrant(prule, req.Name, declType) {
					cv := ""
					if !target.This {
						cv = target.Name
					}
					links = append(links, link{producer: i, consumer: j, pred: req.Name, consumerVar: cv})
					break
				}
			}
		}
	}
	return links
}

// feasibleVars returns the rule variables referenced by at least one
// accepting path that survives the consumer's binding and return-object
// filters.
func (g *Generator) feasibleVars(tmpl *Template, m *TemplateMethod, rule *crysl.Rule, inv *Invocation) map[string]bool {
	out := map[string]bool{}
	for _, p := range g.acceptingPaths(rule) {
		if !g.opts.NoBindingFilter && !pathCoversBindings(rule, p, inv) {
			continue
		}
		if !g.pathCoversReturn(tmpl, m, rule, p, inv) {
			continue
		}
		for _, label := range p {
			if ev, ok := rule.Event(label); ok {
				for _, prm := range ev.Params {
					if !prm.Wildcard {
						out[prm.Name] = true
					}
				}
			}
		}
	}
	return out
}

// pathCoversReturn checks that, when the invocation designates a return
// object, the path produces a value assignable to it (either an event
// result or the constructed object itself).
func (g *Generator) pathCoversReturn(tmpl *Template, m *TemplateMethod, rule *crysl.Rule, path []string, inv *Invocation) bool {
	if inv.ReturnObj == "" {
		return true
	}
	identType, ok := m.VarTypes[inv.ReturnObj]
	if !ok {
		return false
	}
	specName := g.api.unqualify(rule.SpecType())
	for _, label := range path {
		ev, ok := rule.Event(label)
		if !ok {
			continue
		}
		if shape, isCtor := g.api.constructorFor(ev.Method, specName); isCtor {
			if shape.value != nil && types.AssignableTo(shape.value, identType) {
				return true
			}
			continue
		}
		if ev.Result == "" || ev.Result == "this" {
			continue
		}
		if shape, ok := g.api.methodOn(specName, ev.Method); ok && shape.value != nil && types.AssignableTo(shape.value, identType) {
			return true
		}
	}
	return false
}

// canGrant reports whether a rule's ENSURES section can grant pred on an
// object compatible with declType.
func (g *Generator) canGrant(rule *crysl.Rule, pred string, declType ast.Type) bool {
	for _, e := range rule.AST.Ensures {
		if e.Name != pred || len(e.Params) == 0 {
			continue
		}
		var producedType ast.Type
		p := e.Params[0]
		switch {
		case p.This:
			producedType = ast.Type{Name: rule.SpecType()}
		case p.Wildcard:
			return true
		default:
			obj, ok := rule.Objects[p.Name]
			if !ok {
				continue
			}
			producedType = obj.Type
		}
		if g.crySLTypeCompatible(producedType, declType) {
			return true
		}
	}
	return false
}

// crySLTypeCompatible reports whether an object of type 'from' can fill a
// slot declared as type 'to', honouring the gca supertype table.
func (g *Generator) crySLTypeCompatible(from, to ast.Type) bool {
	if from == to {
		return true
	}
	if from.Slice != to.Slice {
		return false
	}
	if from.IsNamed() && to.IsNamed() {
		for _, super := range g.api.supertypes[from.Name] {
			if super == to.Name {
				return true
			}
		}
	}
	return false
}

// sortPaths ranks candidate paths: link score descending (paths that
// consume required predicates and grant predicates later rules rely on,
// workflow steps ②③), then fewest calls, then fewest parameters, then
// lexicographic (stability).
func (g *Generator) sortPaths(rule *crysl.Rule, paths [][]string, wantVars, wantGrants map[string]bool) {
	score := func(p []string) int {
		if g.opts.NoLinkPreference {
			return 0
		}
		s := 0
		seen := map[string]bool{}
		for _, label := range p {
			if ev, ok := rule.Event(label); ok {
				for _, prm := range ev.Params {
					if wantVars[prm.Name] && !seen[prm.Name] {
						seen[prm.Name] = true
						s++
					}
				}
			}
			for _, pd := range rule.EnsuredAfter(label) {
				if wantGrants[pd.Name] && !seen["grant:"+pd.Name] {
					seen["grant:"+pd.Name] = true
					s++
				}
			}
		}
		return s
	}
	params := func(p []string) int {
		n := 0
		for _, label := range p {
			if ev, ok := rule.Event(label); ok {
				n += len(ev.Params)
			}
		}
		return n
	}
	sort.SliceStable(paths, func(i, j int) bool {
		si, sj := score(paths[i]), score(paths[j])
		if si != sj {
			return si > sj
		}
		if len(paths[i]) != len(paths[j]) {
			return len(paths[i]) < len(paths[j])
		}
		pi, pj := params(paths[i]), params(paths[j])
		if pi != pj {
			return pi < pj
		}
		return strings.Join(paths[i], ",") < strings.Join(paths[j], ",")
	})
}

// pathCoversBindings checks that every bound rule variable that occurs in
// some event pattern is referenced by at least one event on the path.
func pathCoversBindings(rule *crysl.Rule, path []string, inv *Invocation) bool {
	for v := range inv.Bindings {
		if v == "this" {
			continue
		}
		appearsInRule := false
		for _, ev := range rule.Events {
			for _, p := range ev.Params {
				if p.Name == v {
					appearsInRule = true
				}
			}
			if ev.Result == v {
				appearsInRule = true
			}
		}
		if !appearsInRule {
			continue // constraint-only variable; nothing to cover
		}
		covered := false
		for _, label := range path {
			ev, ok := rule.Event(label)
			if !ok {
				continue
			}
			if ev.Result == v {
				covered = true
				break
			}
			for _, p := range ev.Params {
				if p.Name == v {
					covered = true
					break
				}
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// evalConstraints evaluates every rule constraint under env (with Called
// reflecting the chosen path) and returns the violated ones.
func evalConstraints(rule *crysl.Rule, env *constraint.Env) []string {
	var violations []string
	for _, c := range rule.AST.Constraints {
		if constraint.Eval(c, env) == constraint.False {
			violations = append(violations, c.String())
		}
	}
	return violations
}

// calledSet expands a path's labels for CallTo evaluation: both the
// concrete labels and any aggregates containing them are marked called.
func calledSet(rule *crysl.Rule, path []string) map[string]bool {
	called := map[string]bool{}
	for _, label := range path {
		called[label] = true
	}
	for agg, members := range rule.Aggregates {
		for _, m := range members {
			if called[m] {
				called[agg] = true
				break
			}
		}
	}
	return called
}

var _ = types.Identical // referenced from sibling files
