package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"cognicryptgen/crysl"
	crylAst "cognicryptgen/crysl/ast"
	"cognicryptgen/crysl/constraint"
)

// trackedObject is the typestate of one local specced object.
type trackedObject struct {
	rule    *crysl.Rule
	state   int   // current DFA state (DFA simulation mode)
	nfaSet  []int // current NFA state set (NFA simulation mode)
	dead    bool  // an invalid transition happened; stop reporting more
	escaped bool  // returned / stored / passed out — suppress incompleteness
	fresh   bool  // created locally by a constructor call
	env     *constraint.Env
	labels  map[string]bool // event labels observed
	pos     token.Position  // creation site
}

// funcAnalysis analyses one function body.
type funcAnalysis struct {
	a      *Analyzer
	info   *types.Info
	report *Report
	fn     *ast.FuncDecl

	tracked map[types.Object]*trackedObject
	// preds tracks predicates granted to plain variables (salts, IVs, keys
	// flowing between rule objects).
	preds map[types.Object]map[string]bool
	// lens records known make([]byte, N) lengths per variable.
	lens map[types.Object]int
	// freshVars marks variables whose value is a locally created
	// allocation (make, composite literal) — predicates required on them
	// are definite findings, not assumptions.
	fresh map[types.Object]bool
	// summaries holds the predicates other functions in the file set grant
	// on their results (nil during the summary-computation pass).
	summaries map[types.Object]*funcSummary
	// summaryOut, when non-nil, receives this function's own summary.
	summaryOut *funcSummary
	// returned records (result index, variable) pairs of return statements.
	returned []returnedVar
}

type returnedVar struct {
	index int
	obj   types.Object
}

func (fa *funcAnalysis) run() {
	fa.fresh = map[types.Object]bool{}
	fa.walkStmts(fa.fn.Body.List)
	fa.finish()
}

func (fa *funcAnalysis) findingf(kind Kind, rule string, pos token.Pos, format string, args ...any) {
	fa.report.Findings = append(fa.report.Findings, Finding{
		Kind:     kind,
		Pos:      fa.a.checker.Fset.Position(pos),
		Rule:     rule,
		Function: fa.fn.Name.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (fa *funcAnalysis) assumef(format string, args ...any) {
	fa.report.Assumptions = append(fa.report.Assumptions, fmt.Sprintf(format, args...))
}

// walkStmts processes statements in source order. Branches of conditionals
// and loop bodies are analysed linearly — a deliberate simplification that
// matches the shape of generated code and typical crypto snippets.
func (fa *funcAnalysis) walkStmts(stmts []ast.Stmt) {
	for _, stmt := range stmts {
		fa.walkStmt(stmt)
	}
}

func (fa *funcAnalysis) walkStmt(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		fa.handleAssign(s)
	case *ast.ExprStmt:
		fa.handleExpr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							fa.recordInit(name, vs.Values[i])
							fa.handleExpr(vs.Values[i])
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for i, r := range s.Results {
			if obj := fa.varOf(r); obj != nil {
				fa.returned = append(fa.returned, returnedVar{index: i, obj: obj})
			}
			fa.markEscape(r)
			fa.handleExpr(r)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			fa.walkStmt(s.Init)
		}
		fa.handleExpr(s.Cond)
		fa.walkStmts(s.Body.List)
		if s.Else != nil {
			fa.walkStmt(s.Else)
		}
	case *ast.BlockStmt:
		fa.walkStmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			fa.walkStmt(s.Init)
		}
		fa.walkStmts(s.Body.List)
	case *ast.RangeStmt:
		fa.walkStmts(s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				fa.walkStmts(cc.Body)
			}
		}
	case *ast.DeferStmt:
		fa.handleExpr(s.Call)
	case *ast.GoStmt:
		fa.handleExpr(s.Call)
	}
}

// recordInit notes allocation freshness and known byte lengths of a
// variable initialisation.
func (fa *funcAnalysis) recordInit(name *ast.Ident, value ast.Expr) {
	obj := fa.info.Defs[name]
	if obj == nil {
		obj = fa.info.Uses[name]
	}
	if obj == nil {
		return
	}
	switch v := value.(type) {
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) >= 2 {
			fa.fresh[obj] = true
			if tv, ok := fa.info.Types[v.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if n, ok := constant.Int64Val(tv.Value); ok {
					fa.lens[obj] = int(n)
				}
			}
		}
	case *ast.CompositeLit:
		fa.fresh[obj] = true
		if _, ok := fa.info.Types[v].Type.Underlying().(*types.Slice); ok {
			fa.lens[obj] = len(v.Elts)
		}
	case *ast.Ident:
		// Alias: inherit freshness, length, predicates.
		if src := fa.info.Uses[v]; src != nil {
			if fa.fresh[src] {
				fa.fresh[obj] = true
			}
			if n, ok := fa.lens[src]; ok {
				fa.lens[obj] = n
			}
			if p, ok := fa.preds[src]; ok {
				fa.preds[obj] = p
			}
			if t, ok := fa.tracked[src]; ok {
				fa.tracked[obj] = t
			}
		}
	}
}

func (fa *funcAnalysis) handleAssign(s *ast.AssignStmt) {
	// Record freshness/lengths/aliases first.
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				fa.recordInit(id, s.Rhs[i])
			}
		}
	}
	for _, rhs := range s.Rhs {
		if call, ok := rhs.(*ast.CallExpr); ok {
			fa.handleCall(call, s.Lhs)
			continue
		}
		fa.handleExpr(rhs)
	}
}

func (fa *funcAnalysis) handleExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			fa.handleCall(call, nil)
			return false
		}
		return true
	})
}

// varOf resolves an expression to the variable it denotes, if any.
func (fa *funcAnalysis) varOf(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := fa.info.Uses[e]; obj != nil {
			return obj
		}
		return fa.info.Defs[e]
	case *ast.ParenExpr:
		return fa.varOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fa.varOf(e.X)
		}
	}
	return nil
}

// markEscape flags tracked objects leaving the function.
func (fa *funcAnalysis) markEscape(e ast.Expr) {
	if obj := fa.varOf(e); obj != nil {
		if t, ok := fa.tracked[obj]; ok {
			t.escaped = true
		}
	}
}

// isGCAFunc resolves a call to a gca package function, returning its name.
func (fa *funcAnalysis) isGCAFunc(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := fa.info.Uses[id].(*types.PkgName); ok && pn.Imported() == fa.a.gcaPkg {
		return sel.Sel.Name, true
	}
	return "", false
}

// isGCAMethod resolves a call to a method on a gca type, returning the
// receiver expression and method name.
func (fa *funcAnalysis) isGCAMethod(call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selInfo, found := fa.info.Selections[sel]
	if !found || selInfo.Kind() != types.MethodVal {
		return nil, "", false
	}
	fn, isFn := selInfo.Obj().(*types.Func)
	if !isFn || fn.Pkg() != fa.a.gcaPkg {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

func (fa *funcAnalysis) handleCall(call *ast.CallExpr, lhs []ast.Expr) {
	// Recurse into argument sub-calls first (inner calls execute first).
	for _, arg := range call.Args {
		fa.handleExpr(arg)
	}

	if name, ok := fa.isGCAFunc(call); ok {
		fa.handleConstructorCall(call, name, lhs)
		return
	}
	if recv, method, ok := fa.isGCAMethod(call); ok {
		fa.handleMethodCall(call, recv, method, lhs)
		return
	}
	// Same-package call with a summary: its result predicates flow to the
	// assigned variables.
	if fa.summaries != nil {
		if sum := fa.summaryFor(call); sum != nil {
			for i, l := range lhs {
				preds, ok := sum.results[i]
				if !ok {
					continue
				}
				if obj := fa.varOf(l); obj != nil {
					for pred := range preds {
						fa.grantVar(obj, pred)
					}
				}
			}
		}
	}
	// Unknown call: arguments escape.
	for _, arg := range call.Args {
		fa.markEscape(arg)
	}
}

// summaryFor resolves a call to a summarised function or method of the
// analysed file set.
func (fa *funcAnalysis) summaryFor(call *ast.CallExpr) *funcSummary {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj := fa.info.Uses[fun]; obj != nil {
			return fa.summaries[obj]
		}
	case *ast.SelectorExpr:
		if sel, ok := fa.info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			return fa.summaries[sel.Obj()]
		}
	}
	return nil
}

func (fa *funcAnalysis) handleConstructorCall(call *ast.CallExpr, name string, lhs []ast.Expr) {
	// FORBIDDEN package functions.
	for _, rule := range fa.a.rules.Rules() {
		for _, forb := range rule.AST.Forbidden {
			if forb.Method != name {
				continue
			}
			if forb.HasParams && len(forb.Params) != len(call.Args) {
				continue
			}
			msg := fmt.Sprintf("call to forbidden method %s", name)
			if forb.Replacement != "" {
				if ev, ok := rule.Event(forb.Replacement); ok {
					msg += fmt.Sprintf("; use %s instead", ev.Method)
				}
			}
			fa.findingf(ForbiddenMethodError, rule.SpecType(), call.Pos(), "%s", msg)
			return
		}
	}

	// Constructor of a specced type?
	tv, ok := fa.info.Types[call]
	if !ok {
		return
	}
	resType := firstValueType(tv.Type)
	rule, ok := fa.a.ruleForType(resType)
	if !ok {
		return
	}
	labels := rule.LabelsForMethod(name)
	if len(labels) == 0 {
		return
	}
	t := &trackedObject{
		rule:   rule,
		state:  rule.DFA.Start,
		nfaSet: nil,
		fresh:  true,
		env: &constraint.Env{
			Vars:    map[string]constraint.Value{},
			Lengths: map[string]int{},
			Types:   map[string]string{},
		},
		labels: map[string]bool{},
		pos:    fa.a.checker.Fset.Position(call.Pos()),
	}
	fa.advance(t, call, name, labels, call.Args)
	if len(lhs) > 0 {
		if id, ok := lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := fa.info.Defs[id]; obj != nil {
				fa.tracked[obj] = t
			} else if obj := fa.info.Uses[id]; obj != nil {
				fa.tracked[obj] = t
			}
		}
	}
}

func firstValueType(t types.Type) types.Type {
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return nil
		}
		return tuple.At(0).Type()
	}
	return t
}

func (fa *funcAnalysis) handleMethodCall(call *ast.CallExpr, recv ast.Expr, method string, lhs []ast.Expr) {
	obj := fa.varOf(recv)
	var t *trackedObject
	if obj != nil {
		t = fa.tracked[obj]
	}
	if t == nil {
		// Receiver from a parameter or unknown flow: analyse what we can.
		recvType := fa.info.Types[recv].Type
		rule, ok := fa.a.ruleForType(recvType)
		if !ok {
			return
		}
		fa.assumef("%s: receiver of %s.%s comes from outside the function; typestate not checked", fa.fn.Name.Name, rule.Name(), method)
		return
	}
	labels := t.rule.LabelsForMethod(method)
	if len(labels) == 0 {
		return // unspecced method
	}
	fa.advance(t, call, method, labels, call.Args)
	// Result bindings grant predicates.
	if len(lhs) > 0 {
		fa.bindResults(t, labels, lhs)
	}
}

// advance steps the automaton, binds arguments, applies predicate effects,
// and checks REQUIRES for one event call.
func (fa *funcAnalysis) advance(t *trackedObject, call *ast.CallExpr, method string, labels []string, args []ast.Expr) {
	// Disambiguate by arity when several labels share the method.
	var label string
	var pattern *crylAst.EventPattern
	for _, l := range labels {
		ev, _ := t.rule.Event(l)
		if len(ev.Params) == len(args) {
			label, pattern = l, ev
			break
		}
	}
	if pattern == nil {
		label = labels[0]
		pattern, _ = t.rule.Event(label)
	}

	if !t.dead {
		if next, ok := fa.step(t, label); ok {
			t.state = next
		} else {
			fa.findingf(TypestateError, t.rule.SpecType(), call.Pos(),
				"call to %s not allowed here by ORDER %s", method, orderString(t.rule))
			t.dead = true
		}
	}
	t.labels[label] = true

	// Bind arguments to rule objects.
	for i, prm := range pattern.Params {
		if i >= len(args) || prm.Wildcard {
			continue
		}
		arg := args[i]
		if v, ok := constValueOf(fa.info, arg); ok {
			t.env.Vars[prm.Name] = v
		}
		if obj := fa.varOf(arg); obj != nil {
			if n, ok := fa.lens[obj]; ok {
				t.env.Lengths[prm.Name] = n
			}
		}
		if tv, ok := fa.info.Types[arg]; ok {
			if name := namedTypeName(tv.Type); name != "" {
				t.env.Types[prm.Name] = fa.a.gcaPkg.Name() + "." + name
			}
		}
		if origin := conversionOrigin(fa.info, arg); origin != "" {
			if t.env.Origins == nil {
				t.env.Origins = map[string]string{}
			}
			t.env.Origins[prm.Name] = origin
		}
		fa.checkRequires(t, prm.Name, arg, call)
	}

	// ENSURES ... after label: grant predicates.
	for _, pd := range t.rule.EnsuredAfter(label) {
		fa.grant(t, pd, pattern, args, nil)
	}
}

// step advances the automaton on label, in DFA or NFA-simulation mode
// (ablation E7; the two are equivalent, cf. the fsm property tests).
func (fa *funcAnalysis) step(t *trackedObject, label string) (int, bool) {
	if !fa.a.opts.NFASimulation {
		return t.rule.DFA.Step(t.state, label)
	}
	if t.nfaSet == nil {
		t.nfaSet = t.rule.NFA.StartSet()
	}
	next := t.rule.NFA.StepSet(t.nfaSet, label)
	if next == nil {
		return 0, false
	}
	t.nfaSet = next
	return 0, true
}

// accepting reports whether the object's current state is accepting.
func (fa *funcAnalysis) accepting(t *trackedObject) bool {
	if fa.a.opts.NFASimulation {
		if t.nfaSet == nil {
			t.nfaSet = t.rule.NFA.StartSet()
		}
		return t.rule.NFA.AcceptingSet(t.nfaSet)
	}
	return t.rule.DFA.Accepting[t.state]
}

// conversionOrigin reports the source type name when arg is a type
// conversion, e.g. []rune(s) where s is a string yields "string". This is
// what the neverTypeOf constraint inspects: the paper's §2.1 discusses why
// passwords must never have lived in immutable strings.
func conversionOrigin(info *types.Info, arg ast.Expr) string {
	call, ok := arg.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	funTV, ok := info.Types[call.Fun]
	if !ok || !funTV.IsType() {
		return ""
	}
	srcTV, ok := info.Types[call.Args[0]]
	if !ok || srcTV.Type == nil {
		return ""
	}
	if b, ok := srcTV.Type.Underlying().(*types.Basic); ok {
		return b.Name()
	}
	return types.TypeString(srcTV.Type, func(p *types.Package) string { return p.Name() })
}

// checkRequires verifies REQUIRES predicates on an argument object.
func (fa *funcAnalysis) checkRequires(t *trackedObject, ruleVar string, arg ast.Expr, call *ast.CallExpr) {
	for _, req := range t.rule.AST.Requires {
		if len(req.Params) == 0 || req.Params[0].This || req.Params[0].Wildcard || req.Params[0].Name != ruleVar {
			continue
		}
		obj := fa.varOf(arg)
		if obj == nil {
			fa.assumef("%s: %s requires %s[%s]; argument is a complex expression, not verified", fa.fn.Name.Name, t.rule.Name(), req.Name, ruleVar)
			continue
		}
		if fa.preds[obj][req.Name] {
			continue
		}
		if tr, ok := fa.tracked[obj]; ok && tr.hasPred(req.Name) {
			continue
		}
		if fa.fresh[obj] {
			fa.findingf(RequiredPredicateError, t.rule.SpecType(), call.Pos(),
				"argument %q must carry predicate %s (e.g. produced by %s), but it is a plain local allocation",
				exprString(arg), req.Name, producerHint(fa.a.rules, req.Name))
			continue
		}
		fa.assumef("%s: %s requires %s on %q; value flows in from outside the function", fa.fn.Name.Name, t.rule.Name(), req.Name, exprString(arg))
	}
}

func (t *trackedObject) hasPred(name string) bool {
	if t.env == nil {
		return false
	}
	return t.selfPreds()[name]
}

// selfPreds stores predicates granted to the tracked object itself; kept
// in the env's Called map under a reserved prefix to avoid another field.
func (t *trackedObject) selfPreds() map[string]bool {
	if t.env.Called == nil {
		t.env.Called = map[string]bool{}
	}
	return t.env.Called
}

// grant applies an ENSURES predicate: to the receiver ("this"), to an
// argument variable, or to result variables (lhs non-nil).
func (fa *funcAnalysis) grant(t *trackedObject, pd *crylAst.PredicateDef, pattern *crylAst.EventPattern, args []ast.Expr, lhs []ast.Expr) {
	if len(pd.Params) == 0 {
		return
	}
	target := pd.Params[0]
	switch {
	case target.This:
		t.selfPreds()[pd.Name] = true
	case target.Wildcard:
	default:
		// Result object of the pattern?
		if pattern.Result == target.Name && lhs != nil {
			for _, l := range lhs {
				if obj := fa.varOf(l); obj != nil {
					fa.grantVar(obj, pd.Name)
				}
			}
			return
		}
		// Argument position?
		for i, prm := range pattern.Params {
			if prm.Name == target.Name && i < len(args) {
				if obj := fa.varOf(args[i]); obj != nil {
					fa.grantVar(obj, pd.Name)
				}
				return
			}
		}
	}
}

func (fa *funcAnalysis) grantVar(obj types.Object, pred string) {
	if fa.preds[obj] == nil {
		fa.preds[obj] = map[string]bool{}
	}
	fa.preds[obj][pred] = true
	if t, ok := fa.tracked[obj]; ok {
		t.selfPreds()[pred] = true
	}
}

// bindResults grants result-targeted predicates after a method call whose
// results are assigned.
func (fa *funcAnalysis) bindResults(t *trackedObject, labels []string, lhs []ast.Expr) {
	for _, label := range labels {
		if !t.labels[label] {
			continue
		}
		ev, _ := t.rule.Event(label)
		if ev.Result == "" || ev.Result == "this" {
			continue
		}
		for _, pd := range t.rule.EnsuredAfter(label) {
			if len(pd.Params) > 0 && pd.Params[0].Name == ev.Result {
				if obj := fa.varOf(lhs[0]); obj != nil {
					fa.grantVar(obj, pd.Name)
				}
			}
		}
	}
}

// finish reports incomplete operations and constraint violations at
// function exit, and materialises the function's summary.
func (fa *funcAnalysis) finish() {
	if fa.summaryOut != nil {
		for _, rv := range fa.returned {
			preds := map[string]bool{}
			for p := range fa.preds[rv.obj] {
				preds[p] = true
			}
			if t, ok := fa.tracked[rv.obj]; ok {
				for p := range t.selfPreds() {
					preds[p] = true
				}
			}
			if len(preds) > 0 {
				if existing, ok := fa.summaryOut.results[rv.index]; ok {
					// Multiple return sites: intersect (a predicate only
					// holds if every path grants it).
					for p := range existing {
						if !preds[p] {
							delete(existing, p)
						}
					}
				} else {
					fa.summaryOut.results[rv.index] = preds
				}
			}
		}
	}
	seen := map[*trackedObject]bool{}
	for _, t := range fa.tracked {
		if seen[t] {
			continue
		}
		seen[t] = true
		if t.dead {
			continue
		}
		if !t.escaped && !fa.accepting(t) {
			fa.findingAt(IncompleteOperationError, t.rule.SpecType(), t.pos,
				"object use is incomplete: ORDER %s not finished (missing e.g. %s)",
				orderString(t.rule), nextEventHint(t))
		}
		env := *t.env
		selfPreds := env.Called // reserved for self-predicates during tracking
		_ = selfPreds
		env.Called = t.labels
		for _, c := range t.rule.AST.Constraints {
			if constraint.Eval(c, &env) == constraint.False {
				fa.findingAt(ConstraintError, t.rule.SpecType(), t.pos,
					"constraint violated: %s", c.String())
			}
		}
	}
}

// findingAt is findingf with a pre-resolved position.
func (fa *funcAnalysis) findingAt(kind Kind, rule string, pos token.Position, format string, args ...any) {
	fa.report.Findings = append(fa.report.Findings, Finding{
		Kind:     kind,
		Pos:      pos,
		Rule:     rule,
		Function: fa.fn.Name.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func orderString(rule *crysl.Rule) string {
	if rule.AST.Order == nil {
		return "(empty)"
	}
	return rule.AST.Order.String()
}

// nextEventHint names a method that would make progress from the current
// state.
func nextEventHint(t *trackedObject) string {
	for label := range t.rule.DFA.Trans[t.state] {
		if ev, ok := t.rule.Event(label); ok {
			return ev.Method
		}
	}
	return "?"
}

// producerHint names a type that can grant the predicate.
func producerHint(rs *crysl.RuleSet, pred string) string {
	producers := rs.Producers(pred)
	if len(producers) == 0 {
		return "an unknown producer"
	}
	return producers[0].SpecType()
}

func exprString(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return fmt.Sprintf("%T", e)
}
