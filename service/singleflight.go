package service

import "sync"

// flight is one in-progress generation that concurrent identical requests
// attach to. resp and err are written exactly once, before done closes.
type flight struct {
	done chan struct{}
	resp GenerateResponse
	err  error
}

// flightGroup coalesces duplicate in-flight generations (singleflight):
// the first goroutine to join a key becomes the leader and runs the
// generation; goroutines joining the same key while the leader is running
// wait for its result instead of submitting the identical work again. N
// concurrent identical cache misses therefore cost exactly one generation.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flight{}}
}

// join returns the flight for key, creating it when absent. leader reports
// whether the caller created the flight and therefore must call finish.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's result and wakes every waiter. The flight
// is removed from the group before done closes, so a request arriving
// later starts fresh — and, on success, hits the result cache the leader
// populated before calling finish.
func (g *flightGroup) finish(key string, f *flight, resp GenerateResponse, err error) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.resp, f.err = resp, err
	close(f.done)
}
