// Package effort computes the artefact-effort metrics of the paper's RQ4
// (Table 2) and a mechanical proxy for the RQ5 user-study tasks.
//
// RQ4 compares the lines of code a crypto expert must write to implement a
// use case: XSL + Clafer for CogniCrypt_old-gen versus a single Go
// template for CogniCryptGEN. RQ5's SUS/NPS numbers came from humans and
// are not reproducible mechanically; what is reproducible is the *work*
// each study task requires on each backend — which artefacts must change,
// in how many lines and tokens, and in how many languages. Both study
// tasks are implemented here as concrete artefact edits and measured with
// a line diff.
package effort

import (
	"fmt"
	"strings"

	"cognicryptgen/oldgen"
	"cognicryptgen/templates"
)

// Table2Row is one row of the reproduced Table 2, with the paper's values
// alongside the measured ones.
type Table2Row struct {
	UseCase int
	Name    string

	// Measured artefact sizes in this repository.
	XSLLOC      int
	ClaferLOC   int
	TemplateLOC int

	// Paper-reported artefact sizes (CGO 2020, Table 2; Java ecosystem).
	PaperXSL      int
	PaperClafer   int
	PaperTemplate int
}

// paperTable2 holds the published Table 2 values, keyed by use-case row.
var paperTable2 = map[int][3]int{ // XSL, Clafer, Java template
	1:  {140, 117, 57},
	2:  {138, 117, 57},
	3:  {111, 117, 51},
	5:  {158, 90, 74},
	6:  {156, 90, 74},
	7:  {129, 90, 68},
	9:  {139, 67, 55},
	10: {115, 43, 40},
}

// Table2 measures artefact sizes for the eight old-gen use cases.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, ouc := range oldgen.UseCases {
		xslLOC, cfrLOC, err := oldgen.ArtefactLOC(ouc)
		if err != nil {
			return nil, err
		}
		guc, err := templates.ByID(ouc.ID)
		if err != nil {
			return nil, err
		}
		src, err := templates.Source(guc)
		if err != nil {
			return nil, err
		}
		paper := paperTable2[ouc.ID]
		rows = append(rows, Table2Row{
			UseCase:       ouc.ID,
			Name:          ouc.Name,
			XSLLOC:        xslLOC,
			ClaferLOC:     cfrLOC,
			TemplateLOC:   templates.GlueLOC(src),
			PaperXSL:      paper[0],
			PaperClafer:   paper[1],
			PaperTemplate: paper[2],
		})
	}
	return rows, nil
}

// Summary aggregates Table 2 the way the paper's §5.3 does: average lines
// per use case per backend, and the GEN/old-gen ratio.
type Summary struct {
	AvgXSL, AvgClafer, AvgOldTotal float64
	AvgTemplate                    float64
	Ratio                          float64 // template / (xsl+clafer)
}

// Summarize computes the Table 2 aggregate.
func Summarize(rows []Table2Row) Summary {
	var s Summary
	if len(rows) == 0 {
		return s
	}
	for _, r := range rows {
		s.AvgXSL += float64(r.XSLLOC)
		s.AvgClafer += float64(r.ClaferLOC)
		s.AvgTemplate += float64(r.TemplateLOC)
	}
	n := float64(len(rows))
	s.AvgXSL /= n
	s.AvgClafer /= n
	s.AvgTemplate /= n
	s.AvgOldTotal = s.AvgXSL + s.AvgClafer
	if s.AvgOldTotal > 0 {
		s.Ratio = s.AvgTemplate / s.AvgOldTotal
	}
	return s
}

// Edit is one artefact change of a study task.
type Edit struct {
	Artefact string // file-ish name, e.g. "hashing.go", "uc11_hashing.xsl"
	Language string // "Go", "GoCrySL", "XSL", "Clafer"
	Before   string
	After    string
}

// TaskEffort is the measured mechanical effort of one study task on one
// backend.
type TaskEffort struct {
	Task             string
	Backend          string // "CogniCryptGEN" or "old-gen"
	ArtefactsTouched int
	LinesChanged     int // added + removed
	TokensChanged    int // whitespace-separated tokens added + removed
	Languages        []string
}

// Measure diffs a task's edits.
func Measure(task, backend string, edits []Edit) TaskEffort {
	te := TaskEffort{Task: task, Backend: backend}
	langs := map[string]bool{}
	for _, e := range edits {
		added, removed := DiffLines(e.Before, e.After)
		if added+removed == 0 {
			continue
		}
		te.ArtefactsTouched++
		te.LinesChanged += added + removed
		ta, tr := diffTokens(e.Before, e.After)
		te.TokensChanged += ta + tr
		langs[e.Language] = true
	}
	for l := range langs {
		te.Languages = append(te.Languages, l)
	}
	sortStrings(te.Languages)
	return te
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// DiffLines returns the number of added and removed lines between two
// texts, using an LCS diff over trimmed lines.
func DiffLines(before, after string) (added, removed int) {
	a := nonEmptyLines(before)
	b := nonEmptyLines(after)
	lcs := lcsLen(a, b)
	return len(b) - lcs, len(a) - lcs
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		t := strings.TrimSpace(l)
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

func lcsLen(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// diffTokens counts added and removed whitespace-separated tokens.
func diffTokens(before, after string) (added, removed int) {
	a := strings.Fields(before)
	b := strings.Fields(after)
	lcs := lcsLen(a, b)
	return len(b) - lcs, len(a) - lcs
}

// String renders the effort for the rq5 table.
func (te TaskEffort) String() string {
	return fmt.Sprintf("%-18s %-14s artefacts=%d lines=%d tokens=%d languages=%s",
		te.Task, te.Backend, te.ArtefactsTouched, te.LinesChanged, te.TokensChanged,
		strings.Join(te.Languages, "+"))
}
