//go:build cryptgen_template

// Template: hybrid encryption of byte arrays (use case 7 of Table 1). A
// fresh AES session key encrypts the payload; the session key itself is
// wrapped with the recipient's RSA public key (RSA-OAEP).
package hybridbytes

import (
	"cognicryptgen/gca"
	cryslgen "cognicryptgen/gen/fluent"
)

// HybridByteArrayEncryptor performs hybrid (KEM/DEM-style) encryption of
// byte slices.
type HybridByteArrayEncryptor struct{}

// GenerateKeyPair produces the recipient's RSA key pair.
func (t *HybridByteArrayEncryptor) GenerateKeyPair() (*gca.KeyPair, error) {
	var kp *gca.KeyPair
	cryslgen.NewGenerator().
		ConsiderRule("gca.KeyPairGenerator").AddReturnObject(kp).
		Generate()
	return kp, nil
}

// Encrypt encrypts data for the holder of pub. It returns IV‖ciphertext
// and the wrapped session key.
func (t *HybridByteArrayEncryptor) Encrypt(data []byte, pub *gca.PublicKey) ([]byte, []byte, error) {
	iv := make([]byte, 12)
	wrapMode := gca.WrapMode
	var ciphertext []byte
	var wrappedKey []byte
	cryslgen.NewGenerator().
		ConsiderRule("gca.KeyGenerator").
		ConsiderRule("gca.SecureRandom").AddParameter(iv, "out").
		ConsiderRule("gca.IVParameterSpec").
		ConsiderRule("gca.Cipher").AddParameter(data, "input").AddReturnObject(ciphertext).
		ConsiderRule("gca.Cipher").AddParameter(wrapMode, "encmode").AddParameter(pub, "key").AddReturnObject(wrappedKey).
		Generate()
	return append(iv, ciphertext...), wrappedKey, nil
}

// Decrypt unwraps the session key with priv and decrypts data (IV‖body).
func (t *HybridByteArrayEncryptor) Decrypt(data, wrappedKey []byte, priv *gca.PrivateKey) ([]byte, error) {
	if len(data) < 12 {
		return nil, gca.ErrInvalidParameter
	}
	iv := data[:12]
	body := data[12:]
	unwrapMode := gca.UnwrapMode
	decryptMode := gca.DecryptMode
	var plaintext []byte
	cryslgen.NewGenerator().
		ConsiderRule("gca.Cipher").AddParameter(unwrapMode, "encmode").AddParameter(priv, "key").AddParameter(wrappedKey, "wrappedKeyBytes").
		ConsiderRule("gca.IVParameterSpec").AddParameter(iv, "iv").
		ConsiderRule("gca.Cipher").AddParameter(decryptMode, "encmode").AddParameter(body, "input").
		AddReturnObject(plaintext).
		Generate()
	return plaintext, nil
}
