package gca

import (
	"bytes"
	"errors"
	"testing"
)

func TestKeyStoreRoundTrip(t *testing.T) {
	ks, err := NewKeyStore()
	if err != nil {
		t.Fatal(err)
	}
	k1 := mustKey(t, 128)
	k2 := mustKey(t, 256)
	if err := ks.SetKeyEntry("first", k1); err != nil {
		t.Fatal(err)
	}
	if err := ks.SetKeyEntry("second", k2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ks.Store(&buf, []rune("store password")); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), k1.Encoded()) || bytes.Contains(buf.Bytes(), k2.Encoded()) {
		t.Fatal("sealed store leaks raw key material")
	}

	loaded, err := LoadKeyStore(bytes.NewReader(buf.Bytes()), []rune("store password"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.GetKeyEntry("first", "AES")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encoded(), k1.Encoded()) || got.Algorithm() != "AES" {
		t.Error("first entry mismatch")
	}
	if len(loaded.Aliases()) != 2 {
		t.Errorf("aliases: %v", loaded.Aliases())
	}
}

func TestKeyStoreWrongPassword(t *testing.T) {
	ks, _ := NewKeyStore()
	if err := ks.SetKeyEntry("k", mustKey(t, 128)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ks.Store(&buf, []rune("right")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKeyStore(bytes.NewReader(buf.Bytes()), []rune("wrong")); err == nil {
		t.Fatal("wrong password accepted")
	}
	// Tampering must also fail authentication.
	data := buf.Bytes()
	data[len(data)-1] ^= 1
	if _, err := LoadKeyStore(bytes.NewReader(data), []rune("right")); err == nil {
		t.Fatal("tampered store accepted")
	}
}

func TestKeyStoreValidation(t *testing.T) {
	ks, _ := NewKeyStore()
	if err := ks.SetKeyEntry("", mustKey(t, 128)); !errors.Is(err, ErrInvalidParameter) {
		t.Error("empty alias accepted")
	}
	if err := ks.SetKeyEntry("a", nil); !errors.Is(err, ErrInvalidKey) {
		t.Error("nil key accepted")
	}
	destroyed := mustKey(t, 128)
	destroyed.Destroy()
	if err := ks.SetKeyEntry("a", destroyed); !errors.Is(err, ErrInvalidKey) {
		t.Error("destroyed key accepted")
	}
	if _, err := ks.GetKeyEntry("ghost", "AES"); !errors.Is(err, ErrInvalidParameter) {
		t.Error("missing alias did not error")
	}
	var buf bytes.Buffer
	if err := ks.Store(&buf, nil); !errors.Is(err, ErrInvalidParameter) {
		t.Error("empty password accepted")
	}
	if _, err := LoadKeyStore(bytes.NewReader([]byte("short")), []rune("p")); !errors.Is(err, ErrInvalidParameter) {
		t.Error("truncated store accepted")
	}
}

func TestKeyStoreDefaultAlgorithmFromEntry(t *testing.T) {
	ks, _ := NewKeyStore()
	k := mustKey(t, 192)
	if err := ks.SetKeyEntry("k", k); err != nil {
		t.Fatal(err)
	}
	got, err := ks.GetKeyEntry("k", "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm() != "AES" {
		t.Errorf("algorithm defaulting: %q", got.Algorithm())
	}
}
