package gca

import (
	"crypto/ecdsa"
	"crypto/rsa"
	"fmt"
)

// SecretKey is symmetric key material with an algorithm tag, mirroring
// javax.crypto.SecretKey / javax.crypto.spec.SecretKeySpec.
type SecretKey struct {
	alg      string
	material []byte
}

// SecretKeySpec wraps raw key material as a key for a named cipher
// algorithm, mirroring javax.crypto.spec.SecretKeySpec. It is a SecretKey
// by embedding and can be used wherever a SecretKey is accepted.
type SecretKeySpec struct {
	SecretKey
}

// NewSecretKeySpec copies keyMaterial into a new key specification for the
// given cipher algorithm.
func NewSecretKeySpec(keyMaterial []byte, algorithm string) (*SecretKeySpec, error) {
	if len(keyMaterial) == 0 {
		return nil, fmt.Errorf("%w: empty key material", ErrInvalidParameter)
	}
	if algorithm == "" {
		return nil, fmt.Errorf("%w: empty algorithm", ErrInvalidParameter)
	}
	m := make([]byte, len(keyMaterial))
	copy(m, keyMaterial)
	return &SecretKeySpec{SecretKey{alg: algorithm, material: m}}, nil
}

// secretHolder is the internal interface shared by SecretKey and
// SecretKeySpec; engines accept either.
type secretHolder interface {
	rawMaterial() []byte
	destroyed() bool
	Algorithm() string
}

func (k *SecretKey) rawMaterial() []byte { return k.material }

// asSecret extracts symmetric key material from a Key, accepting both
// *SecretKey and *SecretKeySpec.
func asSecret(key Key) (secretHolder, bool) {
	h, ok := key.(secretHolder)
	return h, ok
}

// Algorithm returns the key's algorithm name.
func (k *SecretKey) Algorithm() string { return k.alg }

// Encoded returns a copy of the raw key material.
func (k *SecretKey) Encoded() []byte {
	out := make([]byte, len(k.material))
	copy(out, k.material)
	return out
}

// Destroy zeroes the key material. Subsequent use fails with ErrInvalidKey.
func (k *SecretKey) Destroy() {
	for i := range k.material {
		k.material[i] = 0
	}
	k.material = nil
}

func (k *SecretKey) destroyed() bool { return k.material == nil }

// PublicKey wraps an asymmetric public key (RSA or ECDSA).
type PublicKey struct {
	alg string
	rsa *rsa.PublicKey
	ec  *ecdsa.PublicKey
}

// Algorithm returns "RSA" or "ECDSA".
func (k *PublicKey) Algorithm() string { return k.alg }

// Encoded returns nil; asymmetric keys in gca are not extractable.
func (k *PublicKey) Encoded() []byte { return nil }

// PrivateKey wraps an asymmetric private key (RSA or ECDSA).
type PrivateKey struct {
	alg string
	rsa *rsa.PrivateKey
	ec  *ecdsa.PrivateKey
}

// Algorithm returns "RSA" or "ECDSA".
func (k *PrivateKey) Algorithm() string { return k.alg }

// Encoded returns nil; asymmetric keys in gca are not extractable.
func (k *PrivateKey) Encoded() []byte { return nil }

// KeyPair holds a matched public/private key pair, mirroring
// java.security.KeyPair.
type KeyPair struct {
	public  *PublicKey
	private *PrivateKey
}

// Public returns the public half.
func (p *KeyPair) Public() *PublicKey { return p.public }

// Private returns the private half.
func (p *KeyPair) Private() *PrivateKey { return p.private }

// Interface conformance checks.
var (
	_ Key = (*SecretKey)(nil)
	_ Key = (*PublicKey)(nil)
	_ Key = (*PrivateKey)(nil)
)
