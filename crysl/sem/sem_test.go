package sem

import (
	"strings"
	"testing"

	"cognicryptgen/crysl/ast"
	"cognicryptgen/crysl/parser"
)

// check parses and semantically checks a rule, returning the error.
func check(t *testing.T, src string) error {
	t.Helper()
	rule, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("syntax must be valid for this test: %v", err)
	}
	return Check(rule)
}

func wantDiag(t *testing.T, src, fragment string) {
	t.Helper()
	err := check(t, src)
	if err == nil {
		t.Fatalf("expected diagnostic containing %q, got none", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("expected diagnostic containing %q, got: %v", fragment, err)
	}
}

func TestValidRulePasses(t *testing.T) {
	src := `SPEC gca.Thing
OBJECTS
    int n;
    []byte data;
EVENTS
    c: NewThing(n);
    u: Use(data);
ORDER
    c, u?
CONSTRAINTS
    n >= 1;
ENSURES
    done[this] after u;
`
	if err := check(t, src); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
}

func TestDuplicateObject(t *testing.T) {
	wantDiag(t, `SPEC T
OBJECTS
    int x;
    string x;
`, "redeclared")
}

func TestReservedObjectNames(t *testing.T) {
	// The parser already rejects "_" and "this" as object names; the
	// semantic check is the defence-in-depth layer for AST built
	// programmatically, so construct the AST directly.
	rule := &ast.Rule{
		SpecType: "T",
		Objects:  []*ast.Object{{Type: ast.Type{Name: "int"}, Name: "this"}},
	}
	err := Check(rule)
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("expected reserved-name diagnostic, got %v", err)
	}
}

func TestUndeclaredEventParam(t *testing.T) {
	wantDiag(t, `SPEC T
EVENTS
    c: New(missing);
`, `undeclared object "missing"`)
}

func TestUndeclaredResultBinding(t *testing.T) {
	wantDiag(t, `SPEC T
EVENTS
    c: ghost := New();
`, `undeclared object "ghost"`)
}

func TestDuplicateEventLabel(t *testing.T) {
	wantDiag(t, `SPEC T
EVENTS
    c: A();
    c: B();
`, "redeclared")
}

func TestAggregateUnknownMember(t *testing.T) {
	wantDiag(t, `SPEC T
EVENTS
    g := a | b;
`, "unknown label")
}

func TestAggregateCycle(t *testing.T) {
	wantDiag(t, `SPEC T
EVENTS
    a := b;
    b := a;
`, "cycle")
}

func TestOrderUnknownLabel(t *testing.T) {
	wantDiag(t, `SPEC T
EVENTS
    c: New();
ORDER
    c, nope
`, "unknown event label")
}

func TestForbiddenUnknownReplacement(t *testing.T) {
	wantDiag(t, `SPEC T
FORBIDDEN
    Bad() => good;
`, "unknown replacement")
}

func TestConstraintUndeclaredVar(t *testing.T) {
	wantDiag(t, `SPEC T
CONSTRAINTS
    mystery >= 1;
`, `undeclared object "mystery"`)
}

func TestPartRequiresString(t *testing.T) {
	wantDiag(t, `SPEC T
OBJECTS
    int n;
CONSTRAINTS
    part(0, "/", n) in {"x"};
`, "requires a string object")
}

func TestPartEmptySeparator(t *testing.T) {
	wantDiag(t, `SPEC T
OBJECTS
    string s;
CONSTRAINTS
    part(0, "", s) in {"x"};
`, "separator")
}

func TestRelTypeMismatch(t *testing.T) {
	wantDiag(t, `SPEC T
OBJECTS
    int n;
    string s;
CONSTRAINTS
    n == s;
`, "compares")
}

func TestBoolOnlyEquality(t *testing.T) {
	wantDiag(t, `SPEC T
OBJECTS
    bool b;
CONSTRAINTS
    b >= true;
`, "only support == and !=")
}

func TestSetLiteralTypeMismatch(t *testing.T) {
	wantDiag(t, `SPEC T
OBJECTS
    int n;
CONSTRAINTS
    n in {1, "two"};
`, "does not match")
}

func TestEnsuresUnknownAfterLabel(t *testing.T) {
	wantDiag(t, `SPEC T
EVENTS
    c: New();
ENSURES
    p[this] after nothere;
`, "unknown event label")
}

func TestNegatesUnknownAfterLabel(t *testing.T) {
	wantDiag(t, `SPEC T
EVENTS
    c: New();
NEGATES
    p[this] after nothere;
`, "unknown event label")
}

func TestPredicateUndeclaredParam(t *testing.T) {
	wantDiag(t, `SPEC T
REQUIRES
    p[ghost];
`, `undeclared object "ghost"`)
}

func TestCallToUnknownLabel(t *testing.T) {
	wantDiag(t, `SPEC T
OBJECTS
    int x;
CONSTRAINTS
    callTo[nothing];
`, "unknown event label")
}

func TestInstanceofUndeclaredVar(t *testing.T) {
	wantDiag(t, `SPEC T
CONSTRAINTS
    instanceof[ghost, gca.Key];
`, "undeclared")
}

func TestMultipleDiagnosticsReported(t *testing.T) {
	err := check(t, `SPEC T
OBJECTS
    int x;
    int x;
EVENTS
    c: New(ghost);
`)
	if err == nil {
		t.Fatal("expected diagnostics")
	}
	if !strings.Contains(err.Error(), "redeclared") || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("both diagnostics expected, got: %v", err)
	}
}
