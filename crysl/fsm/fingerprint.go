package fsm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
)

// WriteCanonical writes a canonical rendering of the DFA to w: start state,
// accepting set, and the full transition table with symbols in sorted
// order. Two structurally identical automata produce identical output, so
// the rendering is a stable basis for fingerprinting compiled rules.
func (d *DFA) WriteCanonical(w io.Writer) {
	fmt.Fprintf(w, "dfa;start=%d;states=%d;alphabet=%v\n", d.Start, d.NumStates, d.Alphabet)
	for s := 0; s < d.NumStates; s++ {
		fmt.Fprintf(w, "%d;accept=%t", s, d.Accepting[s])
		syms := make([]string, 0, len(d.Trans[s]))
		for sym := range d.Trans[s] {
			syms = append(syms, sym)
		}
		sort.Strings(syms)
		for _, sym := range syms {
			fmt.Fprintf(w, ";%s->%d", sym, d.Trans[s][sym])
		}
		fmt.Fprintln(w)
	}
}

// Fingerprint returns a hex SHA-256 digest of the canonical rendering.
// Because Determinize and Minimize are deterministic, compiling the same
// ORDER expression always yields the same fingerprint.
func (d *DFA) Fingerprint() string {
	h := sha256.New()
	d.WriteCanonical(h)
	return hex.EncodeToString(h.Sum(nil))
}
