package oldgen

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cognicryptgen/internal/srccheck"
)

// TestOldGenCodeRoundTrips mirrors the gen package's runtime integration
// test for the baseline: every XSL-generated use case is compiled into a
// scratch module and executed through its hard-coded templateUsage
// showcase (renamed per file to avoid collisions), plus a behavioural
// assertion per use-case family.
func TestOldGenCodeRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping subprocess go test in -short mode")
	}
	root, err := srccheck.ModuleRoot("")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gomod := fmt.Sprintf(`module oldrt

go 1.24

require cognicryptgen v0.0.0-00010101000000-000000000000

replace cognicryptgen => %s
`, root)
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "oldgenerated")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, uc := range UseCases {
		res, err := Generate(uc, nil)
		if err != nil {
			t.Fatalf("use case %d: %v", uc.ID, err)
		}
		out := strings.ReplaceAll(res.Output, "templateUsage", fmt.Sprintf("usageUC%d", uc.ID))
		if err := os.WriteFile(filepath.Join(pkgDir, uc.Base+".go"), []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "rt_test.go"), []byte(oldGenRTTests), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "test", "./oldgenerated/")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod")
	outBytes, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("old-gen generated-code test run failed: %v\n%s", err, outBytes)
	}
	t.Logf("subprocess go test:\n%s", outBytes)
}

const oldGenRTTests = `package oldgenerated

import (
	"os"
	"path/filepath"
	"testing"
)

func TestUsageShowcasesRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.txt")
	if err := os.WriteFile(path, []byte("old-gen payload"), 0o600); err != nil { t.Fatal(err) }
	if err := usageUC1(path, []rune("pw")); err != nil { t.Fatal("uc1:", err) }
	if err := usageUC2("secret", []rune("pw")); err != nil { t.Fatal("uc2:", err) }
	if err := usageUC3([]rune("pw"), []byte("data")); err != nil { t.Fatal("uc3:", err) }
	path5 := filepath.Join(t.TempDir(), "h.bin")
	if err := os.WriteFile(path5, []byte("hybrid payload"), 0o600); err != nil { t.Fatal(err) }
	if err := usageUC5(path5); err != nil { t.Fatal("uc5:", err) }
	if err := usageUC6("hybrid secret"); err != nil { t.Fatal("uc6:", err) }
	if err := usageUC7([]byte("hybrid bytes")); err != nil { t.Fatal("uc7:", err) }
	if err := usageUC9([]rune("tr0ub4dor")); err != nil { t.Fatal("uc9:", err) }
	if err := usageUC10("release v1"); err != nil { t.Fatal("uc10:", err) }
}

func TestPBEFileRoundTripContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.txt")
	plain := []byte("verify the content, not just the absence of errors")
	if err := os.WriteFile(path, plain, 0o600); err != nil { t.Fatal(err) }
	e := &PBEFileEncryptor{}
	if err := e.EncryptFile(path, []rune("pw")); err != nil { t.Fatal(err) }
	if err := e.DecryptFile(path, []rune("pw")); err != nil { t.Fatal(err) }
	got, _ := os.ReadFile(path)
	if string(got) != string(plain) { t.Fatalf("round trip mismatch: %q", got) }
}

func TestSigningDetectsTamper(t *testing.T) {
	s := &StringSigner{}
	kp, err := s.GenerateKeyPair()
	if err != nil { t.Fatal(err) }
	sig, err := s.Sign("msg", kp)
	if err != nil { t.Fatal(err) }
	ok, err := s.Verify("msg", sig, kp)
	if err != nil || !ok { t.Fatal("valid signature rejected") }
	ok, err = s.Verify("other", sig, kp)
	if err != nil { t.Fatal(err) }
	if ok { t.Fatal("tampered message accepted") }
}

func TestPasswordStorageRejectsWrong(t *testing.T) {
	p := &PasswordStorage{}
	stored, err := p.Hash([]rune("right"))
	if err != nil { t.Fatal(err) }
	ok, err := p.Verify([]rune("wrong"), stored)
	if err != nil { t.Fatal(err) }
	if ok { t.Fatal("wrong password accepted") }
}
`
