package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonEndToEnd boots the daemon as a subprocess, waits for /healthz,
// exercises a generate round-trip, and checks SIGTERM triggers the
// graceful drain path.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping subprocess daemon test in -short mode")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command("go", "run", ".", "-addr", addr, "-workers", "2", "-drain", "5s")
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	// go run forwards signals only when the child is in its own group.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
		}
		cmd.Wait()
	}()

	base := "http://" + addr
	var healthy bool
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				healthy = true
				break
			}
		}
		time.Sleep(250 * time.Millisecond)
	}
	if !healthy {
		t.Fatalf("daemon never became healthy; output:\n%s", out.String())
	}

	resp, err := http.Post(base+"/v1/generate", "application/json",
		strings.NewReader(`{"usecase": 11}`))
	if err != nil {
		t.Fatal(err)
	}
	var gen struct {
		Output      string `json:"output"`
		Fingerprint string `json:"ruleset_fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gen); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status %d", resp.StatusCode)
	}
	if !strings.Contains(gen.Output, `gca.NewMessageDigest("SHA-256")`) {
		t.Errorf("generated output missing expected call:\n%s", gen.Output)
	}
	if gen.Fingerprint == "" {
		t.Error("missing rule-set fingerprint")
	}

	// Graceful shutdown on SIGTERM (delivered to the process group so it
	// reaches the daemon under `go run`).
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained, exiting") {
		t.Errorf("expected graceful-drain log line; output:\n%s", out.String())
	}
}

// awaitDrain decides how a graceful drain ends: normally, forced by a
// second operator signal, or forced by the drain deadline. All three arms
// must be reachable.

func TestAwaitDrainCompletes(t *testing.T) {
	done := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(done)
	}()
	if got := awaitDrain(done, sigc, 5*time.Second); got != drainDone {
		t.Fatalf("want drainDone, got %v", got)
	}
}

func TestAwaitDrainSecondSignalForcesExit(t *testing.T) {
	done := make(chan struct{}) // drain never finishes (stuck)
	sigc := make(chan os.Signal, 1)
	sigc <- syscall.SIGTERM
	if got := awaitDrain(done, sigc, 5*time.Second); got != drainSignal {
		t.Fatalf("want drainSignal, got %v", got)
	}
}

func TestAwaitDrainTimeoutForcesExit(t *testing.T) {
	done := make(chan struct{}) // drain never finishes (stuck)
	sigc := make(chan os.Signal, 1)
	start := time.Now()
	if got := awaitDrain(done, sigc, 20*time.Millisecond); got != drainTimeout {
		t.Fatalf("want drainTimeout, got %v", got)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("timeout arm took %v", time.Since(start))
	}
}
