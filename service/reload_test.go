package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cognicryptgen/templates"
)

// stripHeaderLine drops the "// Code generated ... from <name>" first line:
// the cache-busting unique request names land there, and only there.
func stripHeaderLine(out string) string {
	if i := strings.IndexByte(out, '\n'); i >= 0 {
		return out[i+1:]
	}
	return out
}

// TestReloadUnderLoad is the registry's snapshot-swap contract under fire:
// /v1/reload racing concurrent /v1/generate requests must keep serving a
// complete, consistent rule set at every instant — a request sees either
// the pre-reload snapshot or the post-reload one, never a torn mix — and
// every generation must stay byte-identical to the single-threaded result.
// scripts/verify.sh runs this under -race.
func TestReloadUnderLoad(t *testing.T) {
	srv, err := New(Config{Workers: 2, CacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	cases := append(append([]templates.UseCase(nil), templates.UseCases...), templates.Extensions...)
	want := make(map[int]string, len(cases))
	for _, uc := range cases {
		resp, err := srv.Generate(ctx, GenerateRequest{UseCase: uc.ID})
		if err != nil {
			t.Fatalf("use case %d: %v", uc.ID, err)
		}
		want[uc.ID] = resp.Output
	}

	const (
		generators = 8
		perG       = 6
		reloads    = 5
	)
	var wg sync.WaitGroup
	var failures atomic.Int64
	errc := make(chan error, generators*perG+reloads)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			if _, err := srv.Registry().Reload(); err != nil {
				failures.Add(1)
				errc <- fmt.Errorf("reload %d: %w", i, err)
			}
		}
	}()
	for g := 0; g < generators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				uc := cases[(g+i)%len(cases)]
				src, err := templates.Source(uc)
				if err != nil {
					failures.Add(1)
					errc <- err
					return
				}
				// A unique name defeats the result cache so every request
				// actually runs the pipeline against whichever snapshot its
				// worker holds mid-reload.
				name := fmt.Sprintf("reload_g%d_i%d_%s", g, i, uc.File)
				resp, err := srv.Generate(ctx, GenerateRequest{Name: name, Source: src})
				if err != nil {
					failures.Add(1)
					errc <- fmt.Errorf("goroutine %d iter %d (%s): %w", g, i, uc.Name, err)
					return
				}
				if stripHeaderLine(resp.Output) != stripHeaderLine(want[uc.ID]) {
					failures.Add(1)
					errc <- fmt.Errorf("goroutine %d iter %d (%s): output diverged mid-reload", g, i, uc.Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if failures.Load() == 0 {
		// Sanity: the reloads actually happened while generations ran.
		snap := srv.Registry().Snapshot()
		if snap.Version < uint64(reloads) {
			t.Errorf("only %d snapshot versions, want >= %d", snap.Version, reloads)
		}
	}
}
