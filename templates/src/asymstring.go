//go:build cryptgen_template

// Template: asymmetric encryption of strings (use case 8 of Table 1).
// Short strings are encrypted directly with RSA-OAEP; for bulk data the
// hybrid templates apply.
package asymstring

import (
	"encoding/hex"

	"cognicryptgen/gca"
	cryslgen "cognicryptgen/gen/fluent"
)

// AsymmetricStringEncryptor encrypts short strings under an RSA public key.
type AsymmetricStringEncryptor struct{}

// GenerateKeyPair produces the recipient's RSA key pair.
func (t *AsymmetricStringEncryptor) GenerateKeyPair() (*gca.KeyPair, error) {
	var kp *gca.KeyPair
	cryslgen.NewGenerator().
		ConsiderRule("gca.KeyPairGenerator").AddReturnObject(kp).
		Generate()
	return kp, nil
}

// Encrypt encrypts plaintext for the holder of pub (hex-armored).
func (t *AsymmetricStringEncryptor) Encrypt(plaintext string, pub *gca.PublicKey) (string, error) {
	data := []byte(plaintext)
	var ciphertext []byte
	cryslgen.NewGenerator().
		ConsiderRule("gca.Cipher").AddParameter(pub, "key").AddParameter(data, "input").
		AddReturnObject(ciphertext).
		Generate()
	return hex.EncodeToString(ciphertext), nil
}

// Decrypt reverses Encrypt with the matching private key.
func (t *AsymmetricStringEncryptor) Decrypt(armored string, priv *gca.PrivateKey) (string, error) {
	body, err := hex.DecodeString(armored)
	if err != nil {
		return "", err
	}
	mode := gca.DecryptMode
	var plaintext []byte
	cryslgen.NewGenerator().
		ConsiderRule("gca.Cipher").AddParameter(mode, "encmode").AddParameter(priv, "key").AddParameter(body, "input").
		AddReturnObject(plaintext).
		Generate()
	return string(plaintext), nil
}
