package wire

// Metrics is the body of GET /metrics: the daemon's counters as one typed
// snapshot, shared by the daemon (which fills it), the SDK (which decodes
// it), and the load generator (which diffs before/after snapshots into
// per-node benchmark rows).
type Metrics struct {
	Requests         int64   `json:"requests"`
	GenerateRequests int64   `json:"generate_requests"`
	BatchRequests    int64   `json:"batch_requests"`
	AnalyzeRequests  int64   `json:"analyze_requests"`
	Errors           int64   `json:"errors"`
	Timeouts         int64   `json:"timeouts"`
	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	CacheEntries     int     `json:"cache_entries"`
	Coalesced        int64   `json:"coalesced"`
	Reloads          int64   `json:"reloads"`
	PanicsRecovered  int64   `json:"panics_recovered"`
	ShedTotal        int64   `json:"shed_total"`
	QueueDepth       int     `json:"queue_depth"`
	QueueWaiters     int     `json:"queue_waiters"`
	LatencyP50MS     float64 `json:"latency_p50_ms"`
	LatencyP99MS     float64 `json:"latency_p99_ms"`

	// Plan-cache counters: the precompiled-generation fast path (see
	// gen.PlanCache). A plan hit is a result-cache miss served by byte
	// splicing instead of the full pipeline.

	// PlanHits counts generations served from a compiled plan.
	PlanHits int64 `json:"plan_hits"`
	// PlanMisses counts plan-eligible generations that ran the legacy
	// pipeline (and compiled a plan for next time).
	PlanMisses int64 `json:"plan_misses"`
	// PlanEntries is the resident compiled-plan count.
	PlanEntries int `json:"plan_entries"`
	// PlanBytes approximates the resident bytes of all compiled plans.
	PlanBytes int64 `json:"plan_bytes"`

	// Cluster counters (zero when the node runs without peers).

	// ForwardedTotal counts requests this node forwarded to the peer
	// owning their cache key.
	ForwardedTotal int64 `json:"forwarded_total"`
	// ForwardHits counts forwarded requests the owner answered from its
	// cache or an in-flight generation — the shared-cache payoff.
	ForwardHits int64 `json:"forward_hits"`
	// ForwardFallbacks counts forwards that failed (peer down, draining,
	// overloaded) and were generated locally instead.
	ForwardFallbacks int64 `json:"forward_fallbacks"`
	// ForwardHitRate is ForwardHits / ForwardedTotal.
	ForwardHitRate float64 `json:"forward_hit_rate"`
	// BreakerRejects sums, over all peers, the forward attempts this node's
	// per-peer circuit breakers rejected without trying (peer open).
	BreakerRejects int64 `json:"breaker_rejects"`

	// Warm-restart snapshot counters (zero when -snapshot-dir is unset).

	// SnapshotAgeSeconds is the age of the last successful snapshot write
	// (0 until one completes).
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// SnapshotBytes is the last successful snapshot's on-disk size.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// RestoreEntries counts result-cache entries restored from the snapshot
	// at boot (0 after a cold start).
	RestoreEntries int64 `json:"restore_entries"`
	// RestoreMS is the synchronous boot-restore duration (load + verify +
	// cache refill; the background plan re-warm is not included).
	RestoreMS float64 `json:"restore_ms"`
	// Self is this node's advertised base URL in cluster mode.
	Self string `json:"self,omitempty"`
	// Peers maps each peer base URL to its health as seen by this node.
	Peers map[string]PeerStatus `json:"peers,omitempty"`
}

// PeerStatus is one peer's health as tracked by a node's forwarder.
type PeerStatus struct {
	Healthy bool `json:"healthy"`
	// BreakerState is the peer's circuit-breaker state as seen by this
	// node: "closed" (forwarding), "open" (cooling off after a failure
	// streak), or "half-open" (one trial in flight).
	BreakerState string `json:"breaker_state,omitempty"`
	// Failures counts consecutive probe/forward failures since the peer
	// was last seen healthy.
	Failures int64 `json:"failures"`
	// Forwarded counts requests this node forwarded to the peer.
	Forwarded int64 `json:"forwarded"`
	// BreakerRejects counts forward attempts rejected by this peer's open
	// breaker (each one generated locally instead).
	BreakerRejects int64 `json:"breaker_rejects,omitempty"`
	// LastError is the most recent failure, empty while healthy.
	LastError string `json:"last_error,omitempty"`
}

// ClientStats is the client SDK's local view of its own resilience
// machinery — retries spent, breaker rejections, retry-budget refusals —
// exposed via Client.Stats for operators and the chaos suite. It is not a
// daemon endpoint; the daemon-side equivalents live in Metrics.
type ClientStats struct {
	// Retries counts retry attempts actually sent (first attempts are not
	// retries).
	Retries int64 `json:"retries"`
	// BreakerRejects counts node-selection rejections by per-node open
	// breakers (the request moved on to another node).
	BreakerRejects int64 `json:"breaker_rejects"`
	// RetryBudgetExhausted counts retries refused by the global retry
	// budget; each refusal surfaced the last error to the caller.
	RetryBudgetExhausted int64 `json:"retry_budget_exhausted"`
	// RetryBudgetTokens is the current token balance.
	RetryBudgetTokens float64 `json:"retry_budget_tokens"`
	// BreakerStates maps each configured node to its breaker state.
	BreakerStates map[string]string `json:"breaker_states,omitempty"`
	// HedgedTotal counts hedge requests actually fired (opt-in hedging:
	// the primary owner was slower than the hedge delay and the retry
	// budget granted a token).
	HedgedTotal int64 `json:"hedged_total"`
	// HedgeWins counts hedged requests where the hedge answered first.
	HedgeWins int64 `json:"hedge_wins"`
}
