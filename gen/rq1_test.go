package gen

import (
	"testing"

	"cognicryptgen/analysis"
	"cognicryptgen/rules"
	"cognicryptgen/templates"
)

// TestRQ1GeneratedCodeIsClean reproduces the paper's RQ1 validity check
// (§5.1): every generated use case must compile (Verify) and must pass the
// misuse analyzer driven by the same rule set with zero findings — "none
// of the generated code snippets cause compiler errors or true misuses
// identified by CogniCryptSAST".
func TestRQ1GeneratedCodeIsClean(t *testing.T) {
	rs := rules.MustLoad()
	g, err := New(rs, "", Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	an, err := analysis.New(rs, "", analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, uc := range templates.UseCases {
		src, err := templates.Source(uc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.GenerateFile(uc.File, src)
		if err != nil {
			t.Errorf("use case %d (%s): generation failed: %v", uc.ID, uc.Name, err)
			continue
		}
		rep, err := an.AnalyzeSource(uc.File, res.Output)
		if err != nil {
			t.Errorf("use case %d (%s): analysis failed: %v", uc.ID, uc.Name, err)
			continue
		}
		for _, f := range rep.Findings {
			t.Errorf("use case %d (%s): misuse in generated code: %s", uc.ID, uc.Name, f)
		}
	}
}
