package rules

import (
	"testing"

	"cognicryptgen/crysl"
)

// TestEmbeddedRuleSetLintsClean holds the shipped rule set to the
// cross-rule consistency bar: no errors; warnings are documented
// explicitly here when intentional.
func TestEmbeddedRuleSetLintsClean(t *testing.T) {
	issues := crysl.Lint(MustLoad())
	// Intentional warnings: predicates that downstream analyses consume
	// even though no shipped rule REQUIRES them.
	intentional := map[string]bool{
		"encrypted":  true, // terminal result predicate
		"wrappedKey": true, // terminal result predicate
		"signed":     true,
		"verified":   true,
		"hashed":     true,
		"macced":     true,
		"storedKeys": true,
	}
	for _, i := range issues {
		if i.Severity == crysl.LintError {
			t.Errorf("lint error: %s", i)
			continue
		}
		ok := false
		for name := range intentional {
			if contains(i.Message, name) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected lint warning: %s", i)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
