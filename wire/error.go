package wire

import (
	"fmt"
	"net/http"
)

// Error codes. Every non-2xx response from a cryptgend node carries an
// Error envelope whose Code is one of these; the Retryable flag tells
// clients whether repeating the identical request can succeed (429 after
// the Retry-After hint, 503 after the node drains or the deadline clears).
const (
	CodeInvalidRequest   = "invalid_request"    // 400: the request itself is wrong
	CodeNotFound         = "not_found"          // 404
	CodeMethodNotAllowed = "method_not_allowed" // 405
	CodeBodyTooLarge     = "body_too_large"     // 413
	CodeOverloaded       = "overloaded"         // 429: shed by admission control
	CodeInternal         = "internal"           // 500: recovered panic / reload failure
	CodeUnavailable      = "unavailable"        // 503: draining, timeout, shutdown
)

// Error is the JSON body of every non-2xx response — one envelope across
// /v1/generate, /v1/generate/batch, /v1/analyze, and /v1/reload, instead
// of the ad-hoc per-handler shapes it replaced. A 429 additionally carries
// RetryAfterMS mirroring (at millisecond precision) the Retry-After header
// the daemon sets, so SDKs honor the server's jittered backoff hint
// without parsing headers.
type Error struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
	// RetryAfterMS is the server's backoff hint for retryable errors
	// (currently set on 429s, matching the Retry-After header).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Status is the HTTP status the envelope was served with.
	Status int `json:"status"`
}

// Error implements the error interface, so an SDK can return a decoded
// envelope directly.
func (e *Error) Error() string {
	return fmt.Sprintf("cryptgend: %s (%d): %s", e.Code, e.Status, e.Message)
}

// CodeForStatus maps an HTTP status to its envelope code and default
// retryability: 429 and 503 are the transient classes worth repeating,
// everything else is terminal for the identical request.
func CodeForStatus(status int) (code string, retryable bool) {
	switch status {
	case http.StatusNotFound:
		return CodeNotFound, false
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed, false
	case http.StatusRequestEntityTooLarge:
		return CodeBodyTooLarge, false
	case http.StatusTooManyRequests:
		return CodeOverloaded, true
	case http.StatusInternalServerError:
		return CodeInternal, false
	case http.StatusServiceUnavailable:
		return CodeUnavailable, true
	default:
		return CodeInvalidRequest, false
	}
}

// NewError builds the envelope for an HTTP status with CodeForStatus
// defaults.
func NewError(status int, format string, args ...any) *Error {
	code, retryable := CodeForStatus(status)
	return &Error{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		Retryable: retryable,
		Status:    status,
	}
}
