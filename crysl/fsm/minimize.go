package fsm

import "sort"

// Minimize returns the language-equivalent minimal DFA, computed with
// Hopcroft-style partition refinement over a completed automaton (a
// synthetic dead state absorbs missing transitions and is dropped again
// afterwards).
//
// Rule automata are small, so minimization is not needed for speed; it
// exists because the subset construction can produce duplicate states for
// ORDER expressions like "(a, b?) | (a, b)", and the analyzer's
// diagnostics ("DFA states=N") read better over the canonical machine.
func Minimize(d *DFA) *DFA {
	if d.NumStates == 0 {
		return d
	}
	// Complete the automaton with a dead state.
	n := d.NumStates
	dead := n
	total := n + 1
	trans := make([]map[string]int, total)
	for s := 0; s < n; s++ {
		trans[s] = map[string]int{}
		for _, sym := range d.Alphabet {
			if t, ok := d.Trans[s][sym]; ok {
				trans[s][sym] = t
			} else {
				trans[s][sym] = dead
			}
		}
	}
	trans[dead] = map[string]int{}
	for _, sym := range d.Alphabet {
		trans[dead][sym] = dead
	}
	accepting := make([]bool, total)
	copy(accepting, d.Accepting)

	// Initial partition: accepting vs non-accepting.
	part := make([]int, total)
	for s := 0; s < total; s++ {
		if accepting[s] {
			part[s] = 1
		}
	}
	numBlocks := 2
	if !anyTrue(accepting) {
		numBlocks = 1
	}

	// Iterative refinement: split blocks whose members disagree on the
	// block of any successor. Terminates because the block count strictly
	// increases.
	for {
		type signature string
		sigOf := func(s int) signature {
			sig := make([]byte, 0, 4*len(d.Alphabet)+4)
			sig = appendInt(sig, part[s])
			for _, sym := range d.Alphabet {
				sig = appendInt(sig, part[trans[s][sym]])
			}
			return signature(sig)
		}
		blocks := map[signature]int{}
		newPart := make([]int, total)
		next := 0
		for s := 0; s < total; s++ {
			sig := sigOf(s)
			id, ok := blocks[sig]
			if !ok {
				id = next
				next++
				blocks[sig] = id
			}
			newPart[s] = id
		}
		if next == numBlocks {
			break
		}
		part, numBlocks = newPart, next
	}

	// Build the minimal automaton over blocks, dropping the dead block.
	deadBlock := part[dead]
	// Renumber blocks with the start block first for stable output.
	order := []int{part[d.Start]}
	seen := map[int]bool{part[d.Start]: true}
	for s := 0; s < n; s++ {
		b := part[s]
		if !seen[b] && b != deadBlock {
			seen[b] = true
			order = append(order, b)
		}
	}
	// deadBlock may coincide with a live block only if some live state is
	// equivalent to dead (a trap state); such states are unreachable from
	// accepting paths but must be preserved for step-wise rejection
	// queries, so keep them.
	id := map[int]int{}
	for i, b := range order {
		id[b] = i
	}
	out := &DFA{
		Start:     id[part[d.Start]],
		NumStates: len(order),
		Accepting: make([]bool, len(order)),
		Trans:     make([]map[string]int, len(order)),
		Alphabet:  append([]string(nil), d.Alphabet...),
	}
	for i := range out.Trans {
		out.Trans[i] = map[string]int{}
	}
	for s := 0; s < n; s++ {
		b, ok := id[part[s]]
		if !ok {
			continue // state equivalent to dead
		}
		out.Accepting[b] = accepting[s]
		for _, sym := range d.Alphabet {
			t := trans[s][sym]
			tb := part[t]
			if tb == deadBlock {
				continue
			}
			out.Trans[b][sym] = id[tb]
		}
	}
	return out
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

func appendInt(b []byte, v int) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// sortedSymbols is kept for diagnostic helpers.
func sortedSymbols(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for sym := range m {
		out = append(out, sym)
	}
	sort.Strings(out)
	return out
}
