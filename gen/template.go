package gen

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"cognicryptgen/crysl/constraint"
	cryToken "cognicryptgen/crysl/token"
)

// fluentImportPath is the import path of the fluent template API; chains
// are rooted at a call to its NewGenerator function.
const fluentImportPath = "cognicryptgen/gen/fluent"

// Template is a parsed, type-checked code template.
type Template struct {
	Name       string // file name for diagnostics
	Src        string
	File       *ast.File
	Fset       *token.FileSet
	Pkg        *types.Package
	Info       *types.Info
	StructName string
	Methods    []*TemplateMethod // methods of the template struct, in order
}

// TemplateMethod is one method of the template struct, with any fluent
// chains it contains and the facts the generator could learn about its
// local variables.
type TemplateMethod struct {
	Decl   *ast.FuncDecl
	Chains []*Chain
	// Consts maps local variable (and parameter) names to constant values
	// learned from simple initialisations like `mode := gca.DecryptMode`.
	Consts map[string]constraint.Value
	// Lens maps local []byte variable names to lengths learned from
	// `salt := make([]byte, 32)` initialisations.
	Lens map[string]int
	// VarTypes maps identifier names usable as bindings to their Go types.
	VarTypes map[string]types.Type
}

// Chain is one fluent call chain: the statement to replace plus the rule
// invocations it describes.
type Chain struct {
	Stmt        ast.Stmt
	Invocations []*Invocation
}

// Invocation is one ConsiderRule(...) plus its attached AddParameter and
// AddReturnObject calls.
type Invocation struct {
	RuleName string
	Pos      token.Pos
	// Bindings maps rule variable names to template identifier names
	// (paper: addParameter).
	Bindings map[string]string
	// ReturnObj names the template identifier receiving this rule's result
	// (paper: addReturnObject); empty when absent.
	ReturnObj string
}

// scanTemplate analyses a type-checked template file.
func scanTemplate(name, src string, file *ast.File, fset *token.FileSet, pkg *types.Package, info *types.Info) (*Template, error) {
	t := &Template{Name: name, Src: src, File: file, Fset: fset, Pkg: pkg, Info: info}

	// The template struct is the first struct type declared in the file.
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts := spec.(*ast.TypeSpec)
			if _, ok := ts.Type.(*ast.StructType); ok && t.StructName == "" {
				t.StructName = ts.Name.Name
			}
		}
	}
	if t.StructName == "" {
		return nil, fmt.Errorf("gen: template %s declares no struct type", name)
	}

	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || fd.Body == nil {
			continue
		}
		if recvTypeName(fd) != t.StructName {
			continue
		}
		m := &TemplateMethod{
			Decl:     fd,
			Consts:   map[string]constraint.Value{},
			Lens:     map[string]int{},
			VarTypes: map[string]types.Type{},
		}
		collectMethodFacts(m, info)
		chains, err := extractChains(fd, info)
		if err != nil {
			return nil, fmt.Errorf("gen: template %s, method %s: %w", name, fd.Name.Name, err)
		}
		m.Chains = chains
		t.Methods = append(t.Methods, m)
	}
	if len(t.Methods) == 0 {
		return nil, fmt.Errorf("gen: template %s has no methods on %s", name, t.StructName)
	}
	return t, nil
}

func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// collectMethodFacts records parameter/local types, constant
// initialisations, and make([]byte, N) lengths.
func collectMethodFacts(m *TemplateMethod, info *types.Info) {
	fd := m.Decl
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				m.VarTypes[name.Name] = obj.Type()
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := info.Defs[id]; obj != nil {
					m.VarTypes[id.Name] = obj.Type()
				} else if obj := info.Uses[id]; obj != nil {
					m.VarTypes[id.Name] = obj.Type()
				}
				rhs := n.Rhs[i]
				if tv, ok := info.Types[rhs]; ok && tv.Value != nil {
					m.Consts[id.Name] = constValue(tv.Value)
				}
				if n, ok := makeByteLen(rhs, info); ok {
					m.Lens[id.Name] = n
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if obj := info.Defs[name]; obj != nil {
						m.VarTypes[name.Name] = obj.Type()
					}
					if i < len(vs.Values) {
						if tv, ok := info.Types[vs.Values[i]]; ok && tv.Value != nil {
							m.Consts[name.Name] = constValue(tv.Value)
						}
						if n, ok := makeByteLen(vs.Values[i], info); ok {
							m.Lens[name.Name] = n
						}
					}
				}
			}
		}
		return true
	})
}

func constValue(v constant.Value) constraint.Value {
	switch v.Kind() {
	case constant.Int:
		if i, ok := constant.Int64Val(v); ok {
			return constraint.IntVal(i)
		}
	case constant.String:
		return constraint.StrVal(constant.StringVal(v))
	case constant.Bool:
		return constraint.BoolVal(constant.BoolVal(v))
	}
	return constraint.Unknown
}

// makeByteLen recognises make([]byte, N) with constant N.
func makeByteLen(e ast.Expr, info *types.Info) (int, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return 0, false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
		return 0, false
	}
	if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if n, ok := constant.Int64Val(tv.Value); ok {
			return int(n), true
		}
	}
	return 0, false
}

// extractChains finds fluent chains in a method body. A chain is any
// statement whose expression is a method-call chain rooted at
// fluent.NewGenerator() and ending in Generate(). Chains must be
// top-level statements of the method body: a chain nested inside a
// conditional or loop cannot be spliced soundly and is rejected rather
// than silently left behind (where the fluent stub would panic at run
// time).
func extractChains(fd *ast.FuncDecl, info *types.Info) ([]*Chain, error) {
	var chains []*Chain
	var err error
	recognised := map[ast.Node]bool{}
	for _, stmt := range fd.Body.List {
		call := chainCall(stmt)
		if call == nil {
			continue
		}
		invs, ok, cerr := parseChain(call, info)
		if cerr != nil {
			err = cerr
			break
		}
		if !ok {
			continue
		}
		recognised[call] = true
		chains = append(chains, &Chain{Stmt: stmt, Invocations: invs})
	}
	if err != nil {
		return nil, err
	}
	// Any other NewGenerator use is a nested or malformed chain.
	var nestedErr error
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if nestedErr != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recognisedRoot(call, recognised) {
			return true
		}
		if isFluentRoot(call, info) && !withinRecognised(call, recognised, fd, info) {
			nestedErr = fmt.Errorf("fluent chain must be a top-level statement of the method body (found nested NewGenerator call)")
			return false
		}
		return true
	})
	if nestedErr != nil {
		return nil, nestedErr
	}
	return chains, nil
}

// recognisedRoot reports whether call is one of the extracted chains.
func recognisedRoot(call *ast.CallExpr, recognised map[ast.Node]bool) bool {
	return recognised[call]
}

// withinRecognised reports whether the NewGenerator call is the root of a
// recognised chain (i.e. it appears inside one of the extracted chain
// expressions).
func withinRecognised(root *ast.CallExpr, recognised map[ast.Node]bool, fd *ast.FuncDecl, info *types.Info) bool {
	for node := range recognised {
		found := false
		ast.Inspect(node, func(n ast.Node) bool {
			if n == ast.Node(root) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// chainCall extracts the call expression from a candidate chain statement,
// accepting both bare `...Generate()` and `if err := ...Generate(); ...`
// forms as well as `_ = ...Generate()`.
func chainCall(stmt ast.Stmt) *ast.CallExpr {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			return c
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if c, ok := s.Rhs[0].(*ast.CallExpr); ok {
				return c
			}
		}
	}
	return nil
}

// parseChain walks the selector chain backwards. ok is false when the call
// is not a fluent chain at all; err reports a malformed fluent chain.
func parseChain(call *ast.CallExpr, info *types.Info) (invs []*Invocation, ok bool, err error) {
	type step struct {
		name string
		args []ast.Expr
		pos  token.Pos
	}
	var steps []step
	cur := call
	for {
		if isFluentRoot(cur, info) {
			break
		}
		sel, isSel := cur.Fun.(*ast.SelectorExpr)
		if !isSel {
			return nil, false, nil
		}
		steps = append(steps, step{name: sel.Sel.Name, args: cur.Args, pos: cur.Pos()})
		inner, isCall := sel.X.(*ast.CallExpr)
		if !isCall {
			return nil, false, nil
		}
		cur = inner
	}
	// steps are outermost-first; reverse to chain order.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	if len(steps) == 0 || steps[len(steps)-1].name != "Generate" {
		return nil, false, nil
	}

	var current *Invocation
	for _, st := range steps {
		switch st.name {
		case "ConsiderRule":
			name, ok := stringArg(st.args, 0, info)
			if !ok {
				return nil, false, fmt.Errorf("ConsiderRule requires a constant string argument")
			}
			current = &Invocation{RuleName: name, Pos: st.pos, Bindings: map[string]string{}}
			invs = append(invs, current)
		case "AddParameter":
			if current == nil {
				return nil, false, fmt.Errorf("AddParameter before any ConsiderRule")
			}
			ident, ok := identArg(st.args, 0)
			if !ok {
				return nil, false, fmt.Errorf("AddParameter requires an identifier as first argument")
			}
			v, ok := stringArg(st.args, 1, info)
			if !ok {
				return nil, false, fmt.Errorf("AddParameter requires a constant string rule-variable name")
			}
			if prev, dup := current.Bindings[v]; dup {
				return nil, false, fmt.Errorf("rule variable %q bound twice (%s and %s)", v, prev, ident)
			}
			current.Bindings[v] = ident
		case "AddReturnObject":
			if current == nil {
				return nil, false, fmt.Errorf("AddReturnObject before any ConsiderRule")
			}
			ident, ok := identArg(st.args, 0)
			if !ok {
				return nil, false, fmt.Errorf("AddReturnObject requires an identifier argument")
			}
			if current.ReturnObj != "" {
				return nil, false, fmt.Errorf("rule %s has two return objects", current.RuleName)
			}
			current.ReturnObj = ident
		case "Generate":
			// terminal
		default:
			return nil, false, fmt.Errorf("unknown fluent method %s", st.name)
		}
	}
	if len(invs) == 0 {
		return nil, false, fmt.Errorf("fluent chain considers no rules")
	}
	return invs, true, nil
}

func isFluentRoot(call *ast.CallExpr, info *types.Info) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewGenerator" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pkgName, ok := info.Uses[id].(*types.PkgName); ok {
		return pkgName.Imported().Path() == fluentImportPath
	}
	return false
}

func stringArg(args []ast.Expr, i int, info *types.Info) (string, bool) {
	if i >= len(args) {
		return "", false
	}
	if tv, ok := info.Types[args[i]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	if lit, ok := args[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
		s, err := strconv.Unquote(lit.Value)
		return s, err == nil
	}
	return "", false
}

func identArg(args []ast.Expr, i int) (string, bool) {
	if i >= len(args) {
		return "", false
	}
	if id, ok := args[i].(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

// methodResultInfo describes a template method's result list for error
// propagation inside generated code.
type methodResultInfo struct {
	zeros     []string // zero-value expressions for all results before err
	hasErr    bool
	resultLen int
}

func resultInfo(fd *ast.FuncDecl, info *types.Info) methodResultInfo {
	var ri methodResultInfo
	if fd.Type.Results == nil {
		return ri
	}
	var resTypes []types.Type
	for _, f := range fd.Type.Results.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		tv := info.Types[f.Type]
		for i := 0; i < n; i++ {
			resTypes = append(resTypes, tv.Type)
		}
	}
	ri.resultLen = len(resTypes)
	if len(resTypes) > 0 && isErrorType(resTypes[len(resTypes)-1]) {
		ri.hasErr = true
		for _, t := range resTypes[:len(resTypes)-1] {
			ri.zeros = append(ri.zeros, zeroExpr(t))
		}
	}
	return ri
}

// bindingConstEnv builds the constraint environment contribution of a
// method's bindings: constant values, known lengths and dynamic types of
// bound identifiers.
func (m *TemplateMethod) bindingConstEnv(api *apiModel, inv *Invocation) *constraint.Env {
	env := &constraint.Env{
		Vars:     map[string]constraint.Value{},
		Lengths:  map[string]int{},
		Types:    map[string]string{},
		Subtypes: api.supertypes,
	}
	for ruleVar, ident := range inv.Bindings {
		if v, ok := m.Consts[ident]; ok && v.Known {
			env.Vars[ruleVar] = v
		}
		if n, ok := m.Lens[ident]; ok {
			env.Lengths[ruleVar] = n
		}
		if t, ok := m.VarTypes[ident]; ok {
			if name := typeNameOf(t); name != "" {
				env.Types[ruleVar] = api.qualified(name)
			}
		}
	}
	return env
}

// describeValue renders a constraint value as Go source.
func describeValue(v constraint.Value) string {
	switch v.Kind {
	case cryToken.STRING:
		return strconv.Quote(v.Str)
	case cryToken.CHAR:
		return "'" + v.Str + "'"
	case cryToken.BOOL:
		return strconv.FormatBool(v.Bool)
	default:
		return strconv.FormatInt(v.Int, 10)
	}
}

var _ = strings.TrimSpace // placeholder until strings is needed elsewhere
