// Package wire defines the cryptgend cluster's wire contract: the JSON
// request, response, and error shapes spoken by the daemon (service), the
// Go SDK (client), and the tools (cmd/cryptgend, cmd/loadgen,
// cmd/benchtables), plus the routing key and rendezvous hash that daemon
// and client share so both sides agree on which node owns a request.
//
// The types here used to live inline in the service package; they were
// extracted so that a client does not import the whole generation pipeline
// to talk to a daemon, and so the daemon, the SDK, and the load generator
// cannot drift apart — one package is the contract (the salsacore
// core-types layout: one shared package used by server, client, and
// tools).
package wire

// Forwarded-hop header. A daemon that forwards a request to the peer
// owning its cache key sets this header; a daemon receiving a request
// carrying it never forwards again (one hop, maximum), so a stale or
// disagreeing member list can bounce a request at most once.
const HeaderForwarded = "X-Cryptgend-Forwarded"

// Deadline-budget header. A forwarding daemon sets this to the remaining
// milliseconds of its request deadline, so the owner knows how much budget
// the work actually has: the owner clamps its own request timeout to the
// forwarded budget and sheds (429) work its observed p99 service time says
// it cannot finish in that budget — the forwarder's existing 429 handling
// falls back to generating locally instead of burning a doomed hop.
const HeaderDeadlineMS = "X-Cryptgend-Deadline-Ms"

// GenerateRequest is the body of POST /v1/generate. Exactly one of Source
// or UseCase selects the template.
type GenerateRequest struct {
	// Name labels the template in diagnostics and reports (default
	// "template.go", or the use case's file name).
	Name string `json:"name,omitempty"`
	// Source is the template source text.
	Source string `json:"source,omitempty"`
	// UseCase selects an embedded Table 1 / extension template by ID
	// (1-13) instead of Source.
	UseCase int `json:"usecase,omitempty"`
	// Package overrides the output package name.
	Package string `json:"package,omitempty"`
	// Verify type-checks the generated file before responding.
	Verify bool `json:"verify,omitempty"`
}

// GenerateResponse is the body of a successful POST /v1/generate.
type GenerateResponse struct {
	Name        string  `json:"name"`
	Output      string  `json:"output"`
	Report      *Report `json:"report,omitempty"`
	Fingerprint string  `json:"ruleset_fingerprint"`
	Cached      bool    `json:"cached"`
	// Coalesced marks a response served from another request's in-flight
	// generation (singleflight) rather than the cache or a fresh run.
	Coalesced bool `json:"coalesced,omitempty"`
	// Forwarded marks a response obtained from the cluster peer owning
	// this request's cache key rather than produced by the node that
	// received the request.
	Forwarded  bool    `json:"forwarded,omitempty"`
	DurationMS float64 `json:"duration_ms"`
}

// Report mirrors gen.Report for the wire.
type Report struct {
	Template    string          `json:"template"`
	Methods     []*MethodReport `json:"methods,omitempty"`
	Assumptions []string        `json:"assumptions,omitempty"`
	PushedUp    []string        `json:"pushed_up,omitempty"`
}

// MethodReport mirrors gen.MethodReport.
type MethodReport struct {
	Name  string        `json:"name"`
	Rules []*RuleReport `json:"rules,omitempty"`
}

// RuleReport mirrors gen.RuleReport.
type RuleReport struct {
	Rule        string   `json:"rule"`
	Path        []string `json:"path"`
	Resolutions []string `json:"resolutions,omitempty"`
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	Name   string `json:"name,omitempty"`
	Source string `json:"source"`
}

// AnalyzeResponse is the body of a successful POST /v1/analyze.
type AnalyzeResponse struct {
	Name        string     `json:"name"`
	Findings    []*Finding `json:"findings"`
	Assumptions []string   `json:"assumptions,omitempty"`
	Fingerprint string     `json:"ruleset_fingerprint"`
	DurationMS  float64    `json:"duration_ms"`
}

// Finding mirrors analysis.Finding for the wire.
type Finding struct {
	Kind     string `json:"kind"`
	Rule     string `json:"rule"`
	Function string `json:"function"`
	Position string `json:"position"`
	Message  string `json:"message"`
}

// MaxBatchItems bounds one POST /v1/generate/batch request (enforced by
// the daemon, respected by the SDK's batch splitter). Larger client
// workloads split into multiple batches rather than one unbounded fan-out.
const MaxBatchItems = 256

// BatchRequest is the body of POST /v1/generate/batch. Every item is
// generated concurrently across the worker pool; items share the
// whole-batch deadline (the server's request timeout), optionally
// tightened per item by ItemTimeoutMS.
type BatchRequest struct {
	Requests []GenerateRequest `json:"requests"`
	// ItemTimeoutMS, when positive, caps each item's generation time
	// inside the whole-batch deadline, so one pathological template cannot
	// spend the entire batch budget.
	ItemTimeoutMS int `json:"item_timeout_ms,omitempty"`
}

// BatchItem is one per-item outcome. Items succeed and fail independently
// (partial success): a malformed template fails its own slot while its
// siblings generate.
type BatchItem struct {
	Index    int               `json:"index"`
	OK       bool              `json:"ok"`
	Response *GenerateResponse `json:"response,omitempty"`
	Error    string            `json:"error,omitempty"`
	// Status is the HTTP status the item would have received as a lone
	// /v1/generate request (400 client error, 503 timeout/shutdown).
	Status int `json:"status,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/generate/batch. The
// HTTP status is 200 whenever the batch itself was well-formed, even if
// every item failed; clients inspect per-item OK/Status.
type BatchResponse struct {
	Results    []BatchItem `json:"results"`
	Succeeded  int         `json:"succeeded"`
	Failed     int         `json:"failed"`
	DurationMS float64     `json:"duration_ms"`
}

// ReloadResponse is the body of a successful POST /v1/reload.
type ReloadResponse struct {
	Fingerprint string `json:"ruleset_fingerprint"`
	Version     uint64 `json:"version"`
	Rules       int    `json:"rules"`
}

// RuleInfo is one row of GET /v1/rules.
type RuleInfo struct {
	Spec           string `json:"spec"`
	Events         int    `json:"events"`
	DFAStates      int    `json:"dfa_states"`
	AcceptingPaths int    `json:"accepting_paths"`
}

// RulesResponse is the body of GET /v1/rules.
type RulesResponse struct {
	Fingerprint string     `json:"ruleset_fingerprint"`
	Version     uint64     `json:"version"`
	Rules       []RuleInfo `json:"rules"`
}

// TemplateInfo is one row of GET /v1/templates.
type TemplateInfo struct {
	ID      int      `json:"id"`
	Name    string   `json:"name"`
	File    string   `json:"file"`
	Sources []string `json:"sources,omitempty"`
}

// TemplatesResponse is the body of GET /v1/templates.
type TemplatesResponse struct {
	Templates []TemplateInfo `json:"templates"`
}

// HealthResponse is the body of GET /healthz (liveness).
type HealthResponse struct {
	Status      string  `json:"status"`
	UptimeS     float64 `json:"uptime_s"`
	Workers     int     `json:"workers"`
	Rules       int     `json:"rules"`
	Fingerprint string  `json:"ruleset_fingerprint"`
	Version     uint64  `json:"ruleset_version"`
}

// ReadyResponse is the body of GET /readyz (readiness). Status is one of
// "ok", "degraded" (serving, but the last reload failed and the last-good
// rule set is live), "restoring" (serving from a restored warm-restart
// snapshot while plan re-warm finishes), or "draining" (shutdown began;
// stop routing — the only state served with HTTP 503).
type ReadyResponse struct {
	Status            string `json:"status"`
	Fingerprint       string `json:"ruleset_fingerprint,omitempty"`
	Version           uint64 `json:"ruleset_version,omitempty"`
	LastError         string `json:"last_error,omitempty"`
	FailedFingerprint string `json:"failed_fingerprint,omitempty"`
	FailedAt          string `json:"failed_at,omitempty"`
}

// Ready states.
const (
	ReadyOK       = "ok"
	ReadyDegraded = "degraded"
	ReadyDraining = "draining"
	// ReadyRestoring reports a node that restored its result cache from a
	// warm-restart snapshot and is still re-warming the implied plan-cache
	// entries in the background. Served with HTTP 200 (like degraded): the
	// node answers correctly throughout — restoring is a warm-up signal,
	// not an exclusion signal, and a 503 here would make peers and SDK
	// probes eject a node that is healthier than a cold one.
	ReadyRestoring = "restoring"
)
