package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI executes this command via `go run .` (subprocess; skipped with
// -short).
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping subprocess CLI test in -short mode")
	}
	cmd := exec.Command("go", append([]string{"run", "."}, args...)...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCheckEmbeddedRules(t *testing.T) {
	out, err := runCLI(t)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "14 rule(s) OK") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestDumpSingleRule(t *testing.T) {
	out, err := runCLI(t, "-dump", "-rule", "gca.Cipher")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"gca.Cipher", "ORDER", "path: [c1 i1 f1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFmtRoundTrips(t *testing.T) {
	out, err := runCLI(t, "-fmt", "-rule", "gca.SecureRandom")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.HasPrefix(out, "SPEC gca.SecureRandom") {
		t.Errorf("canonical form:\n%s", out)
	}
}

func TestBrokenRuleFileFails(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.crysl")
	if err := os.WriteFile(bad, []byte("SPEC\n???"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, bad)
	if err == nil {
		t.Fatalf("broken rule accepted:\n%s", out)
	}
}
